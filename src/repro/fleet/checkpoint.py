"""SPU checkpoints: the state that survives a machine crash.

When a machine crashes, everything its kernel was *doing* is gone —
run queues, in-flight compute, resident pages.  What survives is the
SPU's replicated control state: its contract (demand, SLO floor, and
the degradation fraction accumulated so far), a ledger summary of CPU
time consumed, and per-job progress measured in completed checkpoint
rounds.  A :class:`SpuCheckpoint` is exactly that state, as a frozen
value object the failover controller can order deterministically and
the fleet watchdog can audit for conservation (rounds never decrease
across a migration; a partially-finished round is lost, never
invented).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import List, Sequence, Tuple

from repro.fleet.spec import FleetSpuSpec
from repro.kernel.process import Process


@dataclass(frozen=True)
class JobCheckpoint:
    """One job's durable progress: completed rounds out of a total.

    ``rounds_done`` accumulates across hostings — after a migration the
    job is respawned with only its *remaining* rounds, and a later
    checkpoint folds the new hosting's rounds on top of the old base.
    """

    name: str
    rounds_total: int
    rounds_done: int

    def __post_init__(self) -> None:
        if not 0 <= self.rounds_done <= self.rounds_total:
            raise ValueError(
                f"job {self.name!r} has {self.rounds_done} rounds done"
                f" of {self.rounds_total}"
            )

    @property
    def remaining(self) -> int:
        return self.rounds_total - self.rounds_done


@dataclass(frozen=True)
class SpuCheckpoint:
    """An SPU's replicated state at the instant its machine died."""

    spec: FleetSpuSpec
    #: Accumulated contract fraction *before* this evacuation; further
    #: degradation composes multiplicatively on top.
    fraction: Fraction
    #: CPU microseconds consumed across all hostings (ledger summary,
    #: carried for fleet accounting).
    cpu_time_us: int
    jobs: Tuple[JobCheckpoint, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "jobs", tuple(self.jobs))
        if not 0 <= self.fraction <= 1:
            raise ValueError(
                f"SPU {self.spec.name!r} checkpoint fraction {self.fraction}"
                " outside [0, 1]"
            )

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def rounds_done(self) -> int:
        """Total durable rounds across every hosting so far."""
        return sum(j.rounds_done for j in self.jobs)

    @property
    def rounds_remaining(self) -> int:
        return sum(j.remaining for j in self.jobs)


def capture(
    spec: FleetSpuSpec,
    fraction: Fraction,
    cpu_time_before: int,
    bases: Sequence[JobCheckpoint],
    procs: Sequence[Process],
) -> SpuCheckpoint:
    """Checkpoint a hosted SPU from its live processes.

    ``bases`` are the job checkpoints the SPU *arrived* with (all-zero
    on its home machine); ``procs`` are the fleet jobs spawned from
    them, in the same order (``None`` for a job that arrived already
    complete).  Each live job has run ``len(checkpoints)`` durable
    rounds on this hosting, clamped to what it had left — completed
    rounds are durable, the round in flight when the machine died is
    not.
    """
    if len(bases) != len(procs):
        raise ValueError(
            f"SPU {spec.name!r}: {len(bases)} job bases for"
            f" {len(procs)} processes"
        )
    jobs: List[JobCheckpoint] = []
    cpu_time = cpu_time_before
    for base, proc in zip(bases, procs):
        done_here = 0
        if proc is not None:
            done_here = min(len(proc.checkpoints), base.remaining)
            cpu_time += proc.cpu_time_us
        jobs.append(
            JobCheckpoint(
                name=base.name,
                rounds_total=base.rounds_total,
                rounds_done=base.rounds_done + done_here,
            )
        )
    return SpuCheckpoint(
        spec=spec,
        fraction=fraction,
        cpu_time_us=cpu_time,
        jobs=tuple(jobs),
    )


def fresh_jobs(spec: FleetSpuSpec) -> Tuple[JobCheckpoint, ...]:
    """The all-zero job checkpoints an SPU starts with at its home."""
    return tuple(
        JobCheckpoint(
            name=f"{spec.name}/j{i}", rounds_total=spec.rounds, rounds_done=0
        )
        for i in range(spec.jobs)
    )
