"""Plain-text tables for experiment output.

The benches print the same rows/series the paper reports; these helpers
keep that formatting in one place.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned plain-text table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_comparison(
    label: str, paper_value: float, measured_value: float, unit: str = ""
) -> str:
    """One paper-vs-measured line for EXPERIMENTS.md-style reporting."""
    suffix = f" {unit}" if unit else ""
    return (
        f"{label}: paper={paper_value:g}{suffix}"
        f" measured={measured_value:g}{suffix}"
    )


def format_bars(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
    title: Optional[str] = None,
) -> str:
    """Render a horizontal ASCII bar chart (the paper's figures are
    bar charts; this keeps their shape visible in terminal output)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must be the same length")
    if not values:
        return title or ""
    peak = max(values)
    if peak <= 0:
        raise ValueError("values must contain something positive")
    label_width = max(len(l) for l in labels)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        bar = "#" * max(1, round(width * value / peak))
        lines.append(f"{label.ljust(label_width)}  {bar} {value:g}{unit}")
    return "\n".join(lines)
