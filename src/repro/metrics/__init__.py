"""Metrics: job statistics and report formatting."""

from repro.metrics.export import to_csv, to_json, to_records
from repro.metrics.report import format_bars, format_comparison, format_table
from repro.metrics.summary import (
    DiskSummary,
    MachineReport,
    SpuSummary,
    format_report,
    machine_report,
)
from repro.metrics.timeline import (
    SpuTimeline,
    UtilizationSample,
    UtilizationSampler,
)
from repro.metrics.stats import (
    JobResult,
    MetricsError,
    job_results,
    mean_response_by_spu,
    mean_response_us,
    normalize,
)

__all__ = [
    "JobResult",
    "MetricsError",
    "job_results",
    "mean_response_us",
    "mean_response_by_spu",
    "normalize",
    "format_table",
    "format_comparison",
    "format_bars",
    "UtilizationSampler",
    "UtilizationSample",
    "SpuTimeline",
    "to_csv",
    "to_json",
    "to_records",
    "MachineReport",
    "SpuSummary",
    "DiskSummary",
    "machine_report",
    "format_report",
]
