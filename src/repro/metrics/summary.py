"""Whole-machine run summaries.

:func:`machine_report` condenses a finished (or paused) kernel into one
dataclass — utilization, scheduling churn, per-SPU resource totals,
disk and cache statistics — and :func:`format_report` renders it.  This
is the SimOS-style "statistics collection" surface the paper's
methodology leaned on (Section 4.1), for this simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, TYPE_CHECKING

from repro.metrics.report import format_table

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel


@dataclass(frozen=True)
class SpuSummary:
    """Per-SPU totals over the run."""

    spu_id: int
    name: str
    cpu_seconds: float
    mem_used_pages: int
    mem_entitled_pages: int
    disk_requests: int
    disk_sectors: int
    processes: int


@dataclass(frozen=True)
class DiskSummary:
    """Per-drive totals over the run."""

    disk_id: int
    requests: int
    sectors: int
    mean_wait_ms: float
    mean_latency_ms: float
    utilization: float
    transient_errors: int = 0
    retries: int = 0
    failed_requests: int = 0
    alive: bool = True


@dataclass(frozen=True)
class FaultSummary:
    """Hardware-fault activity over the run (all zero on a healthy machine)."""

    cpus_removed: int = 0
    cpus_added: int = 0
    disks_failed: int = 0
    pages_decommissioned: int = 0
    renegotiations: int = 0
    swap_io_errors: int = 0
    transient_errors: int = 0
    failed_requests: int = 0

    @property
    def any_faults(self) -> bool:
        return any(
            (
                self.cpus_removed,
                self.cpus_added,
                self.disks_failed,
                self.pages_decommissioned,
                self.transient_errors,
                self.failed_requests,
                self.swap_io_errors,
            )
        )


@dataclass(frozen=True)
class MachineReport:
    """Everything notable about one run, in one place."""

    simulated_seconds: float
    cpu_utilization: float
    context_switches: int
    loans_granted: int
    loans_revoked: int
    cache_hit_ratio: float
    free_pages: int
    spus: List[SpuSummary] = field(default_factory=list)
    disks: List[DiskSummary] = field(default_factory=list)
    faults: FaultSummary = field(default_factory=FaultSummary)


def machine_report(kernel: "Kernel") -> MachineReport:
    """Summarise a kernel's run so far."""
    now = kernel.engine.now
    spus = []
    for spu in kernel.registry.user_spus():
        requests = sum(d.stats.count(spu.spu_id) for d in kernel.drives)
        sectors = sum(d.stats.total_sectors(spu.spu_id) for d in kernel.drives)
        processes = sum(
            1 for p in kernel.processes.values() if p.spu_id == spu.spu_id
        )
        spus.append(
            SpuSummary(
                spu_id=spu.spu_id,
                name=spu.name,
                cpu_seconds=kernel.cpu_account.total(spu.spu_id) / 1e6,
                mem_used_pages=spu.memory().used,
                mem_entitled_pages=spu.memory().entitled,
                disk_requests=requests,
                disk_sectors=sectors,
                processes=processes,
            )
        )
    disks = []
    for drive in kernel.drives:
        busy = sum(r.service_us for r in drive.stats.completed)
        disks.append(
            DiskSummary(
                disk_id=drive.disk_id,
                requests=drive.stats.count(),
                sectors=drive.stats.total_sectors(),
                mean_wait_ms=drive.stats.mean_wait_ms(),
                mean_latency_ms=drive.stats.mean_latency_ms(),
                utilization=busy / now if now else 0.0,
                transient_errors=drive.stats.transient_errors,
                retries=drive.stats.retries,
                failed_requests=drive.stats.failed_requests,
                alive=drive.alive,
            )
        )
    faults = FaultSummary(
        cpus_removed=kernel.cpus_removed,
        cpus_added=kernel.cpus_added,
        disks_failed=len(kernel.disks_failed),
        pages_decommissioned=kernel.memory.decommissioned,
        renegotiations=kernel.renegotiations,
        swap_io_errors=kernel.swap_io_errors,
        transient_errors=sum(d.stats.transient_errors for d in kernel.drives),
        failed_requests=sum(d.stats.failed_requests for d in kernel.drives),
    )
    sched = kernel.cpusched
    return MachineReport(
        simulated_seconds=now / 1e6,
        cpu_utilization=kernel.cpu_utilization(),
        context_switches=kernel.context_switches,
        loans_granted=sched.loans_granted if sched else 0,
        loans_revoked=sched.loans_revoked if sched else 0,
        cache_hit_ratio=kernel.fs.cache.hit_ratio,
        free_pages=kernel.memory.free_pages,
        spus=spus,
        disks=disks,
        faults=faults,
    )


def format_report(report: MachineReport) -> str:
    """Render a MachineReport as plain text."""
    head = (
        f"simulated {report.simulated_seconds:.2f}s |"
        f" cpu {report.cpu_utilization * 100:.0f}% busy,"
        f" {report.context_switches} switches,"
        f" loans {report.loans_granted}/{report.loans_revoked} granted/revoked |"
        f" cache hit {report.cache_hit_ratio * 100:.0f}% |"
        f" {report.free_pages} pages free"
    )
    spu_rows = [
        [s.name, f"{s.cpu_seconds:.2f}", s.mem_used_pages, s.mem_entitled_pages,
         s.disk_requests, s.processes]
        for s in report.spus
    ]
    disk_rows = [
        [f"{d.disk_id}{'' if d.alive else ' DEAD'}", d.requests, d.sectors,
         f"{d.mean_wait_ms:.1f}", f"{d.mean_latency_ms:.2f}",
         f"{d.utilization * 100:.0f}%", d.transient_errors, d.failed_requests]
        for d in report.disks
    ]
    parts = [head]
    if spu_rows:
        parts.append(format_table(
            ["spu", "cpu s", "mem used", "mem entitled", "disk reqs", "procs"],
            spu_rows,
        ))
    if disk_rows:
        parts.append(format_table(
            ["disk", "reqs", "sectors", "wait ms", "lat ms", "busy",
             "io errs", "failed"],
            disk_rows,
        ))
    faults = report.faults
    if faults.any_faults:
        parts.append(
            "faults:"
            f" cpus -{faults.cpus_removed}/+{faults.cpus_added} |"
            f" disks failed {faults.disks_failed} |"
            f" pages lost {faults.pages_decommissioned} |"
            f" io errors {faults.transient_errors}"
            f" ({faults.failed_requests} requests failed,"
            f" {faults.swap_io_errors} swap) |"
            f" renegotiations {faults.renegotiations}"
        )
    return "\n".join(parts)
