"""Job- and SPU-level statistics over a finished simulation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.kernel.kernel import Kernel
from repro.kernel.process import Process, ProcessState


class MetricsError(RuntimeError):
    """Raised when asked for statistics that do not exist."""


@dataclass(frozen=True)
class JobResult:
    """Response time and resource usage of one finished process."""

    pid: int
    name: str
    spu_id: int
    response_us: int
    cpu_time_us: int
    fault_count: int


def job_results(
    kernel: Kernel,
    spu_ids: Optional[Iterable[int]] = None,
    top_level_only: bool = True,
) -> List[JobResult]:
    """Collect results for finished processes.

    ``top_level_only`` skips children (a pmake's compile tasks are part
    of the pmake job, not jobs themselves).
    """
    wanted = set(spu_ids) if spu_ids is not None else None
    out: List[JobResult] = []
    for proc in kernel.processes.values():
        if proc.state is not ProcessState.EXITED:
            raise MetricsError(f"process {proc.pid} ({proc.name}) has not finished")
        if top_level_only and proc.parent is not None:
            continue
        if wanted is not None and proc.spu_id not in wanted:
            continue
        out.append(
            JobResult(
                pid=proc.pid,
                name=proc.name,
                spu_id=proc.spu_id,
                response_us=proc.response_us,
                cpu_time_us=proc.cpu_time_us,
                fault_count=proc.fault_count,
            )
        )
    return out


def mean_response_us(results: Sequence[JobResult]) -> float:
    """Average job response time in microseconds."""
    if not results:
        raise MetricsError("no job results to average")
    return sum(r.response_us for r in results) / len(results)


def mean_response_by_spu(results: Sequence[JobResult]) -> Dict[int, float]:
    """Average response per SPU id."""
    by_spu: Dict[int, List[JobResult]] = {}
    for r in results:
        by_spu.setdefault(r.spu_id, []).append(r)
    return {spu: mean_response_us(rs) for spu, rs in by_spu.items()}


def normalize(value: float, baseline: float) -> float:
    """Express ``value`` as the paper's percent-of-baseline (100 = equal)."""
    if baseline <= 0:
        raise MetricsError(f"baseline must be positive, got {baseline}")
    return 100.0 * value / baseline
