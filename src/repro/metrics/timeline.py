"""Per-SPU resource-usage timelines.

The paper's figures come from response times, but diagnosing *why* a
scheme behaves as it does needs time series: how much CPU each SPU
actually received per interval, and how its memory levels moved.  The
:class:`UtilizationSampler` is a daemon that snapshots both on a fixed
period; the result renders as a plain-text table or feeds assertions
(e.g. "SPU 1's CPU share never dropped below its entitlement").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, TYPE_CHECKING

from repro.sim.units import MSEC

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel


@dataclass(frozen=True)
class UtilizationSample:
    """One interval's snapshot for one SPU."""

    time: int
    #: Fraction of the machine's CPU capacity consumed this interval.
    cpu_share: float
    mem_entitled: int
    mem_allowed: int
    mem_used: int


@dataclass
class SpuTimeline:
    """The sample series for one SPU."""

    spu_id: int
    name: str
    samples: List[UtilizationSample] = field(default_factory=list)

    def mean_cpu_share(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.cpu_share for s in self.samples) / len(self.samples)

    def min_cpu_share(self) -> float:
        if not self.samples:
            return 0.0
        return min(s.cpu_share for s in self.samples)

    def peak_mem_used(self) -> int:
        return max((s.mem_used for s in self.samples), default=0)


class UtilizationSampler:
    """Samples every active user SPU's CPU and memory periodically.

    Attach before (or during) a run::

        sampler = UtilizationSampler(kernel, period=msecs(100))
        sampler.start()
        kernel.run()
        print(sampler.timeline_of(spu).mean_cpu_share())
    """

    def __init__(self, kernel: "Kernel", period: int = 100 * MSEC):
        if period <= 0:
            raise ValueError("sampling period must be positive")
        self.kernel = kernel
        self.period = period
        self.timelines: Dict[int, SpuTimeline] = {}
        self._last_cpu: Dict[int, int] = {}
        self._timer = None

    def start(self) -> None:
        if self._timer is not None:
            raise RuntimeError("sampler already started")
        self._timer = self.kernel.engine.every(self.period, self.sample)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()
            self._timer = None

    def sample(self) -> None:
        """Take one snapshot of every active user SPU."""
        now = self.kernel.engine.now
        capacity = self.kernel.config.ncpus * self.period
        for spu in self.kernel.registry.active_user_spus():
            timeline = self.timelines.get(spu.spu_id)
            if timeline is None:
                timeline = SpuTimeline(spu.spu_id, spu.name)
                self.timelines[spu.spu_id] = timeline
            total_cpu = self.kernel.cpu_account.total(spu.spu_id)
            delta = total_cpu - self._last_cpu.get(spu.spu_id, 0)
            self._last_cpu[spu.spu_id] = total_cpu
            memory = spu.memory()
            timeline.samples.append(
                UtilizationSample(
                    time=now,
                    cpu_share=delta / capacity,
                    mem_entitled=memory.entitled,
                    mem_allowed=memory.allowed,
                    mem_used=memory.used,
                )
            )

    def timeline_of(self, spu) -> SpuTimeline:
        """The timeline for an SPU (accepts the SPU or its id)."""
        spu_id = getattr(spu, "spu_id", spu)
        try:
            return self.timelines[spu_id]
        except KeyError:
            raise KeyError(f"no samples for SPU {spu_id}") from None
