"""Export experiment results to CSV or JSON.

Every experiment driver returns (frozen) dataclasses; these helpers
turn one or a collection of them into files or strings so results can
be archived, diffed across runs, or plotted elsewhere.  Nested
dataclasses and dicts are flattened with dotted keys.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
from typing import Any, Dict, Iterable, List, Mapping, Optional


def _flatten(value: Any, prefix: str = "") -> Dict[str, Any]:
    """Flatten dataclasses/mappings into dotted scalar keys."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        value = dataclasses.asdict(value)
    if isinstance(value, Mapping):
        out: Dict[str, Any] = {}
        for key, sub in value.items():
            dotted = f"{prefix}.{key}" if prefix else str(key)
            out.update(_flatten(sub, dotted))
        return out
    if isinstance(value, (list, tuple)):
        out = {}
        for i, sub in enumerate(value):
            dotted = f"{prefix}.{i}" if prefix else str(i)
            out.update(_flatten(sub, dotted))
        return out
    return {prefix or "value": value}


def to_records(results: Any) -> List[Dict[str, Any]]:
    """Normalise experiment output into a list of flat records.

    Accepts one dataclass, a list of them, or a dict keyed by label
    (e.g. ``run_table_4()``'s policy->row mapping; the key becomes a
    ``label`` column).
    """
    if dataclasses.is_dataclass(results) and not isinstance(results, type):
        return [_flatten(results)]
    if isinstance(results, Mapping):
        records = []
        for label, row in results.items():
            record = {"label": label}
            record.update(_flatten(row))
            records.append(record)
        return records
    if isinstance(results, Iterable):
        return [_flatten(row) for row in results]
    raise TypeError(f"cannot export {type(results).__name__}")


def to_csv(results: Any, path: Optional[str] = None) -> str:
    """Render results as CSV; optionally write to ``path``."""
    records = to_records(results)
    if not records:
        raise ValueError("no records to export")
    fields: List[str] = []
    for record in records:
        for key in record:
            if key not in fields:
                fields.append(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fields)
    writer.writeheader()
    for record in records:
        writer.writerow(record)
    text = buffer.getvalue()
    if path is not None:
        with open(path, "w") as f:
            f.write(text)
    return text


def to_json(results: Any, path: Optional[str] = None, indent: int = 2) -> str:
    """Render results as JSON; optionally write to ``path``."""
    text = json.dumps(to_records(results), indent=indent, sort_keys=True)
    if path is not None:
        with open(path, "w") as f:
            f.write(text)
    return text
