"""Disk request schedulers: Pos (C-SCAN), Iso (blind fair), PIso, and
two extra baselines (FIFO, SSTF) for ablations.

A scheduler only *chooses* the next request from the queue; the drive
(:mod:`repro.disk.drive`) owns timing and accounting.  Fairness-aware
schedulers consult a :class:`BandwidthLedger` for each SPU's decayed
bandwidth usage relative to its share.
"""

from __future__ import annotations

import abc
from typing import List, Protocol, Sequence

from repro.disk.request import DiskRequest


class BandwidthLedger(Protocol):
    """Per-SPU disk bandwidth usage, as seen by fairness policies."""

    def usage_ratio(self, spu_id: int, now: int) -> float:
        """Decayed sectors transferred divided by the SPU's share."""
        ...

    def is_background(self, spu_id: int) -> bool:
        """True for the ``shared`` SPU, which gets lowest priority."""
        ...


class NullLedger:
    """A ledger for schedulers that ignore fairness (Pos/FIFO/SSTF)."""

    __slots__ = ()

    def usage_ratio(self, spu_id: int, now: int) -> float:
        return 0.0

    def is_background(self, spu_id: int) -> bool:
        return False


def cscan_pick(queue: Sequence[DiskRequest], head_sector: int) -> DiskRequest:
    """C-SCAN order: the nearest request at/after the head, else wrap.

    Requests are ordered by start sector; the head sweeps upward and
    jumps back to the lowest outstanding request at the end of the
    sweep.  Ties are broken by arrival order (request id).
    """
    if not queue:
        raise ValueError("cannot pick from an empty queue")
    ahead = [r for r in queue if r.sector >= head_sector]
    candidates = ahead if ahead else queue
    return min(candidates, key=lambda r: (r.sector, r.request_id))


def sstf_pick(queue: Sequence[DiskRequest], head_sector: int) -> DiskRequest:
    """Shortest-seek-first: nearest request by sector distance."""
    if not queue:
        raise ValueError("cannot pick from an empty queue")
    return min(queue, key=lambda r: (abs(r.sector - head_sector), r.request_id))


class DiskScheduler(abc.ABC):
    """Chooses the next request to service."""

    __slots__ = ()

    name: str = "abstract"

    @abc.abstractmethod
    def select(
        self,
        queue: Sequence[DiskRequest],
        head_sector: int,
        now: int,
        ledger: BandwidthLedger,
    ) -> DiskRequest:
        """Pick one request from a non-empty ``queue``."""


class CScanScheduler(DiskScheduler):
    """Stock IRIX 5.3 behaviour: head position only ("Pos").

    The requesting SPU plays no part, so a stream of contiguous requests
    (a large copy, a core dump) can lock out everyone else.
    """

    __slots__ = ()

    name = "pos"

    def select(self, queue, head_sector, now, ledger):
        return cscan_pick(queue, head_sector)


class FifoScheduler(DiskScheduler):
    """Strict arrival order.  Fair per-request, terrible seek behaviour."""

    __slots__ = ()

    name = "fifo"

    def select(self, queue, head_sector, now, ledger):
        return min(queue, key=lambda r: r.request_id)


class SstfScheduler(DiskScheduler):
    """Greedy shortest-seek; can starve distant requests."""

    __slots__ = ()

    name = "sstf"

    def select(self, queue, head_sector, now, ledger):
        return sstf_pick(queue, head_sector)


#: A background (shared-SPU) request that has waited this long joins the
#: foreground candidates anyway.  The paper gives the shared SPU "the
#: lowest priority" without an aging rule; the valve only matters under
#: pathological always-full queues and is far above normal wait times.
BACKGROUND_STARVATION_LIMIT = 500 * 1000  # 500 ms in microseconds


def _split_background(
    queue: Sequence[DiskRequest], ledger: BandwidthLedger, now: int
) -> List[DiskRequest]:
    """Foreground requests if any exist, else the whole queue.

    The ``shared`` SPU's delayed writes run at the lowest priority
    (Section 3.3): they are only schedulable when no user SPU has a
    request outstanding, or once they have aged past the starvation
    limit.
    """
    foreground = [
        r
        for r in queue
        if not ledger.is_background(r.spu_id)
        or now - r.enqueue_time >= BACKGROUND_STARVATION_LIMIT
    ]
    return foreground if foreground else list(queue)


class BlindFairScheduler(DiskScheduler):
    """"Iso": fairness only, ignoring head position (Section 4.5).

    Always serves the queued SPU with the lowest usage ratio, FIFO
    within the SPU.  Provides strong isolation but pays extra seeks.
    """

    __slots__ = ()

    name = "iso"

    def select(self, queue, head_sector, now, ledger):
        candidates = _split_background(queue, ledger, now)
        ratios = {
            spu_id: ledger.usage_ratio(spu_id, now)
            for spu_id in sorted({r.spu_id for r in candidates})
        }
        neediest = min(ratios, key=lambda s: (ratios[s], s))
        own = [r for r in candidates if r.spu_id == neediest]
        return min(own, key=lambda r: r.request_id)


class FairCScanScheduler(DiskScheduler):
    """"PIso": head-position scheduling under a fairness criterion.

    Requests are chosen in C-SCAN order as long as every SPU with
    outstanding requests passes the fairness criterion.  An SPU *fails*
    when its usage ratio exceeds the mean ratio of active SPUs by more
    than ``bw_difference_threshold``; it is then denied the disk until
    other SPUs catch up (or it is alone).  The threshold trades
    isolation (0 → round-robin-like) against throughput (∞ → pure
    C-SCAN); see the ablation bench.
    """

    __slots__ = ("bw_difference_threshold",)

    name = "piso"

    def __init__(self, bw_difference_threshold: float):
        if bw_difference_threshold < 0:
            raise ValueError("threshold must be >= 0")
        self.bw_difference_threshold = bw_difference_threshold

    def eligible(
        self, queue: Sequence[DiskRequest], now: int, ledger: BandwidthLedger
    ) -> List[DiskRequest]:
        """The requests whose SPUs currently pass the fairness criterion."""
        candidates = _split_background(queue, ledger, now)
        active = sorted({r.spu_id for r in candidates})
        if len(active) <= 1:
            # Sharing happens naturally: an SPU alone in the queue can
            # never fail the criterion.
            return list(candidates)
        ratios = {s: ledger.usage_ratio(s, now) for s in active}
        mean = sum(ratios.values()) / len(active)
        passing = {
            s for s in active if ratios[s] <= mean + self.bw_difference_threshold
        }
        if not passing:  # pragma: no cover - min ratio is always <= mean
            passing = set(active)
        return [r for r in candidates if r.spu_id in passing]

    def select(self, queue, head_sector, now, ledger):
        return cscan_pick(self.eligible(queue, now, ledger), head_sector)


def make_scheduler(policy_name: str, bw_difference_threshold: float = 256.0) -> DiskScheduler:
    """Build a scheduler from a policy name used in the paper/benches."""
    name = policy_name.lower()
    if name == "pos":
        return CScanScheduler()
    if name == "iso":
        return BlindFairScheduler()
    if name == "piso":
        return FairCScanScheduler(bw_difference_threshold)
    if name == "fifo":
        return FifoScheduler()
    if name == "sstf":
        return SstfScheduler()
    raise ValueError(f"unknown disk scheduling policy {policy_name!r}")
