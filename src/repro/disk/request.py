"""Disk request representation and per-request statistics."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


class DiskOp(enum.Enum):
    READ = "read"
    WRITE = "write"


_request_ids = itertools.count(1)


@dataclass
class DiskRequest:
    """One I/O request: a contiguous run of sectors for one SPU.

    Timing fields are filled in by the drive as the request moves
    through the queue; they are the raw material for the paper's
    "response time / average wait time / average latency" columns.
    """

    spu_id: int
    op: DiskOp
    sector: int
    nsectors: int
    #: Called at completion time (used to wake blocked processes).
    on_complete: Optional[Callable[["DiskRequest"], None]] = None
    #: Identifies the issuing process for tracing; -1 for daemons.
    pid: int = -1
    #: How the transferred sectors are charged to SPUs at completion.
    #: ``None`` charges everything to ``spu_id``.  Shared delayed writes
    #: are *scheduled* under the shared SPU but their sectors are
    #: charged back to the owning user SPUs (Section 3.3).
    charges: Optional[Dict[int, int]] = None
    request_id: int = field(default_factory=lambda: next(_request_ids))
    #: Absolute completion deadline (simulated µs); transient-error
    #: retries stop once the next attempt could not finish before it.
    #: ``None`` uses the drive's retry-policy default.
    deadline_us: Optional[int] = None

    # --- filled in by the drive ------------------------------------------------
    enqueue_time: int = -1
    start_time: int = -1
    finish_time: int = -1
    seek_us: int = 0
    rotation_us: int = 0
    transfer_us: int = 0
    #: Service attempts so far (> 1 after transient-error retries).
    attempts: int = 0
    #: Set when the request completed with an unrecoverable I/O error
    #: (retry budget or deadline exhausted); callers must check it.
    failed: bool = False

    def __post_init__(self) -> None:
        if self.nsectors <= 0:
            raise ValueError(f"request must cover >= 1 sector, got {self.nsectors}")
        if self.sector < 0:
            raise ValueError(f"negative start sector {self.sector}")

    @property
    def last_sector(self) -> int:
        return self.sector + self.nsectors - 1

    @property
    def wait_us(self) -> int:
        """Time spent queued before service began."""
        if self.start_time < 0 or self.enqueue_time < 0:
            raise ValueError("request has not been serviced yet")
        return self.start_time - self.enqueue_time

    @property
    def service_us(self) -> int:
        """Mechanical service time (seek + rotation + transfer)."""
        return self.seek_us + self.rotation_us + self.transfer_us

    @property
    def response_us(self) -> int:
        """Total time from enqueue to completion."""
        if self.finish_time < 0:
            raise ValueError("request has not completed yet")
        return self.finish_time - self.enqueue_time


@dataclass
class DiskStats:
    """Aggregated statistics over completed requests on one drive."""

    completed: List[DiskRequest] = field(default_factory=list)
    #: Service attempts that came back with a transient I/O error.
    transient_errors: int = 0
    #: Retries issued after transient errors (= errors that were not
    #: terminal for their request).
    retries: int = 0
    #: Requests that exhausted their retry budget or deadline and
    #: completed with ``failed=True``.
    failed_requests: int = 0
    #: Sectors moved by *successful* completions — exactly the sectors
    #: the drive charges to its bandwidth ledger, so the sanitizer can
    #: check conservation without walking ``completed``.
    ok_sectors: int = 0

    def record(self, request: DiskRequest) -> None:
        self.completed.append(request)
        if request.failed:
            self.failed_requests += 1
        else:
            self.ok_sectors += request.nsectors

    def for_spu(self, spu_id: int) -> List[DiskRequest]:
        return [r for r in self.completed if r.spu_id == spu_id]

    def mean_wait_ms(self, spu_id: Optional[int] = None) -> float:
        """Average queue wait in milliseconds (per SPU or overall)."""
        reqs = self.completed if spu_id is None else self.for_spu(spu_id)
        if not reqs:
            return 0.0
        return sum(r.wait_us for r in reqs) / len(reqs) / 1000.0

    def mean_latency_ms(self, spu_id: Optional[int] = None) -> float:
        """Average mechanical latency (seek+rotation+transfer) in ms."""
        reqs = self.completed if spu_id is None else self.for_spu(spu_id)
        if not reqs:
            return 0.0
        return sum(r.service_us for r in reqs) / len(reqs) / 1000.0

    def mean_seek_ms(self, spu_id: Optional[int] = None) -> float:
        """Average seek component in milliseconds."""
        reqs = self.completed if spu_id is None else self.for_spu(spu_id)
        if not reqs:
            return 0.0
        return sum(r.seek_us for r in reqs) / len(reqs) / 1000.0

    def total_sectors(self, spu_id: Optional[int] = None) -> int:
        reqs = self.completed if spu_id is None else self.for_spu(spu_id)
        return sum(r.nsectors for r in reqs)

    def count(self, spu_id: Optional[int] = None) -> int:
        return len(self.completed if spu_id is None else self.for_spu(spu_id))
