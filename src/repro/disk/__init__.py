"""Disk substrate: HP 97560 mechanical model, request queue, and the
Pos / Iso / PIso scheduling policies from Section 3.3 / 4.5."""

from repro.disk.drive import DiskDrive, SpuBandwidthLedger
from repro.disk.model import DiskGeometry, ServiceTime, fast_disk, hp97560, service_time
from repro.disk.zoned import ZonedGeometry, hp97560_zoned
from repro.disk.request import DiskOp, DiskRequest, DiskStats
from repro.disk.schedulers import (
    BlindFairScheduler,
    CScanScheduler,
    DiskScheduler,
    FairCScanScheduler,
    FifoScheduler,
    NullLedger,
    SstfScheduler,
    cscan_pick,
    make_scheduler,
    sstf_pick,
)

__all__ = [
    "DiskGeometry",
    "ZonedGeometry",
    "ServiceTime",
    "hp97560",
    "hp97560_zoned",
    "fast_disk",
    "service_time",
    "DiskOp",
    "DiskRequest",
    "DiskStats",
    "DiskDrive",
    "SpuBandwidthLedger",
    "DiskScheduler",
    "CScanScheduler",
    "BlindFairScheduler",
    "FairCScanScheduler",
    "FifoScheduler",
    "SstfScheduler",
    "NullLedger",
    "cscan_pick",
    "sstf_pick",
    "make_scheduler",
]
