"""Mechanical disk model based on the HP 97560 (Kotz et al., 1994).

The model computes, for a request starting at a given head position and
time, the three latency components the paper reports:

* **seek** — a two-regime curve over cylinder distance: short seeks go
  as ``a + b*sqrt(d)``, long seeks as ``c + e*d`` (the published HP
  97560 fit).  The paper's experiments scale seek latency by 1/2 to
  shorten simulation runs; :attr:`DiskGeometry.seek_scale` reproduces
  that.
* **rotation** — the platter position is a pure function of simulated
  time (constant angular velocity from t=0), so rotational delay is the
  time until the target sector comes under the head.
* **transfer** — sectors pass under the head at the media rate; track
  and cylinder boundary crossings add head/track-switch time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class DiskGeometry:
    """Geometry and timing parameters of a disk drive."""

    name: str = "HP97560"
    cylinders: int = 1962
    tracks_per_cylinder: int = 19
    sectors_per_track: int = 72
    rpm: int = 4002
    #: Short-seek regime: seek_ms = a + b*sqrt(distance), below cutoff.
    seek_a_ms: float = 3.24
    seek_b_ms: float = 0.400
    #: Long-seek regime: seek_ms = c + e*distance, at/above cutoff.
    seek_c_ms: float = 8.00
    seek_e_ms: float = 0.008
    seek_cutoff: int = 383
    #: Head-switch (same cylinder) and track-switch times.
    head_switch_ms: float = 1.6
    #: Real drives skew consecutive tracks so sequential transfers
    #: continue at media rate across track boundaries.  With ideal skew
    #: (the default) boundary crossings cost nothing extra and the
    #: platter angle stays in sync with wall time — sequential streams
    #: see near-zero rotational delay, as they should.  Set False to
    #: charge ``head_switch_ms`` per crossing (no-skew ablation).
    ideal_track_skew: bool = True
    #: Multiplier on seek time; the paper uses 0.5 ("scaling factor of
    #: two for the disk model, i.e. half the seek latency").
    seek_scale: float = 1.0

    def scaled(self, seek_scale: float) -> "DiskGeometry":
        """A copy with a different seek scaling factor."""
        return replace(self, seek_scale=seek_scale)

    # --- derived quantities -----------------------------------------------

    @property
    def sectors_per_cylinder(self) -> int:
        return self.sectors_per_track * self.tracks_per_cylinder

    @property
    def total_sectors(self) -> int:
        return self.sectors_per_cylinder * self.cylinders

    @property
    def rotation_us(self) -> float:
        """One full revolution, in microseconds."""
        return 60_000_000.0 / self.rpm

    @property
    def sector_time_us(self) -> float:
        """Time for one sector to pass under the head."""
        return self.rotation_us / self.sectors_per_track

    # --- address mapping -------------------------------------------------------

    def cylinder_of(self, sector: int) -> int:
        self._check_sector(sector)
        return sector // self.sectors_per_cylinder

    def track_of(self, sector: int) -> int:
        """Surface index within the cylinder."""
        self._check_sector(sector)
        return (sector % self.sectors_per_cylinder) // self.sectors_per_track

    def offset_of(self, sector: int) -> int:
        """Angular sector offset within the track."""
        self._check_sector(sector)
        return sector % self.sectors_per_track

    def _check_sector(self, sector: int) -> None:
        if not 0 <= sector < self.total_sectors:
            raise ValueError(
                f"sector {sector} outside disk (0..{self.total_sectors - 1})"
            )

    # --- timing ---------------------------------------------------------------

    def seek_us(self, from_cyl: int, to_cyl: int) -> int:
        """Seek time between two cylinders, in microseconds."""
        distance = abs(to_cyl - from_cyl)
        if distance == 0:
            return 0
        if distance < self.seek_cutoff:
            ms = self.seek_a_ms + self.seek_b_ms * math.sqrt(distance)
        else:
            ms = self.seek_c_ms + self.seek_e_ms * distance
        return round(ms * 1000.0 * self.seek_scale)

    def rotation_delay_us(self, at_time: int, target_offset: int) -> int:
        """Wait until ``target_offset`` rotates under the head.

        The platter angle is derived from absolute simulated time, so
        back-to-back sequential requests naturally see near-zero
        rotational delay while random ones average half a revolution.
        """
        sector_time = self.sector_time_us
        current_angle = (at_time / sector_time) % self.sectors_per_track
        delta = (target_offset - current_angle) % self.sectors_per_track
        # Integer-microsecond event times can leave the head a hair's
        # breadth past the target, which would charge a full revolution
        # for a back-to-back sequential transfer.  Within half a sector
        # the head still catches the target.
        if delta > self.sectors_per_track - 0.5:
            delta = 0.0
        return round(delta * sector_time)

    def rotation_delay_at(self, at_time: int, sector: int) -> int:
        """Rotational wait for a target sector (uniform interface with
        zoned geometries, whose angle grid varies by zone)."""
        return self.rotation_delay_us(at_time, self.offset_of(sector))

    def transfer_us(self, sector: int, nsectors: int) -> int:
        """Media transfer time for ``nsectors`` starting at ``sector``.

        With ideal track skew (default) transfers run at media rate
        regardless of boundary crossings.  Without it, every track
        boundary adds a head/track switch (cylinder crossings use the
        same cost; the seek between adjacent cylinders is dominated by
        it anyway).
        """
        self._check_sector(sector)
        self._check_sector(sector + nsectors - 1)
        base = nsectors * self.sector_time_us
        if self.ideal_track_skew:
            return round(base)
        first_track = sector // self.sectors_per_track
        last_track = (sector + nsectors - 1) // self.sectors_per_track
        switches = last_track - first_track
        return round(base + switches * self.head_switch_ms * 1000.0)


def hp97560(seek_scale: float = 1.0, media_scale: int = 1) -> DiskGeometry:
    """The HP 97560 model.

    ``seek_scale=0.5`` matches the paper's runs ("a scaling factor of
    two for the disk model, i.e. the model has half the seek latency").
    ``media_scale`` multiplies sectors per track, raising the media
    transfer rate while keeping seek and rotation — the same
    run-shortening idea applied to transfers.  The disk experiments use
    ``media_scale=4`` so, as in the paper's numbers, positioning (not
    streaming) dominates per-request latency.
    """
    if media_scale < 1:
        raise ValueError(f"media_scale must be >= 1, got {media_scale}")
    return DiskGeometry(
        seek_scale=seek_scale,
        sectors_per_track=72 * media_scale,
    )


def fast_disk() -> DiskGeometry:
    """A fast, low-seek disk.

    The non-disk experiments in the paper give every SPU a "separate
    fast disk" so that CPU and memory effects dominate; this geometry
    plays that role (sub-millisecond seeks, 10k RPM).
    """
    return DiskGeometry(
        name="FastDisk",
        cylinders=1962,
        tracks_per_cylinder=19,
        sectors_per_track=72,
        rpm=10000,
        seek_a_ms=0.6,
        seek_b_ms=0.02,
        seek_c_ms=1.5,
        seek_e_ms=0.001,
        seek_cutoff=383,
        head_switch_ms=0.5,
    )


@dataclass(frozen=True)
class ServiceTime:
    """Breakdown of one request's mechanical service time."""

    seek_us: int
    rotation_us: int
    transfer_us: int

    @property
    def total_us(self) -> int:
        return self.seek_us + self.rotation_us + self.transfer_us


def service_time(
    geometry: DiskGeometry, head_cylinder: int, start_time: int, sector: int, nsectors: int
) -> ServiceTime:
    """Compute the service-time breakdown for one request.

    Works for any geometry exposing ``seek_us`` / ``cylinder_of`` /
    ``rotation_delay_at`` / ``transfer_us`` — both the flat
    :class:`DiskGeometry` and :class:`~repro.disk.zoned.ZonedGeometry`.
    """
    seek = geometry.seek_us(head_cylinder, geometry.cylinder_of(sector))
    rotation = geometry.rotation_delay_at(start_time + seek, sector)
    transfer = geometry.transfer_us(sector, nsectors)
    return ServiceTime(seek, rotation, transfer)
