"""The disk drive: queue, scheduler, mechanical model, and accounting.

One :class:`DiskDrive` serves one request at a time.  On each
completion it charges the transferred sectors to the owning SPUs'
decayed bandwidth counters (the "sectors transferred per second"
metric, Section 3.3) and asks its scheduler for the next request.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.spu import SHARED_SPU_ID, SPURegistry
from repro.disk.model import DiskGeometry, service_time
from repro.disk.request import DiskRequest, DiskStats
from repro.disk.schedulers import DiskScheduler, NullLedger
from repro.sim.engine import Engine
from repro.sim.units import MSEC


class SpuBandwidthLedger:
    """Bandwidth accounting backed by the SPU registry's decayed counters.

    The usage *ratio* divides the decayed sector count by the SPU's
    disk-bandwidth share weight, so an SPU entitled to twice the
    bandwidth fails the fairness criterion at twice the usage.
    """

    def __init__(self, disk_id: int, registry: SPURegistry, decay_period: int = 500 * MSEC):
        self.disk_id = disk_id
        self.registry = registry
        self.decay_period = decay_period

    def _share(self, spu_id: int) -> int:
        entitled = self.registry.get(spu_id).disk_bw().entitled
        return entitled if entitled > 0 else 1

    def usage_ratio(self, spu_id: int, now: int) -> float:
        spu = self.registry.get(spu_id)
        counter = spu.disk_counter(self.disk_id, self.decay_period, now)
        return counter.value(now) / self._share(spu_id)

    def charge(self, spu_id: int, nsectors: int, now: int) -> None:
        spu = self.registry.get(spu_id)
        spu.disk_counter(self.disk_id, self.decay_period, now).add(nsectors, now)

    def is_background(self, spu_id: int) -> bool:
        return spu_id == SHARED_SPU_ID


class DiskDrive:
    """A single disk with its queue and scheduler."""

    def __init__(
        self,
        engine: Engine,
        geometry: DiskGeometry,
        scheduler: DiskScheduler,
        ledger: Optional[SpuBandwidthLedger] = None,
        disk_id: int = 0,
    ):
        self.engine = engine
        self.geometry = geometry
        self.scheduler = scheduler
        self.ledger = ledger if ledger is not None else NullLedger()
        self.disk_id = disk_id
        self.queue: List[DiskRequest] = []
        self.stats = DiskStats()
        self.busy = False
        #: Head position as the sector just past the last transfer.
        self.head_sector = 0

    @property
    def head_cylinder(self) -> int:
        if self.head_sector >= self.geometry.total_sectors:
            return self.geometry.cylinders - 1
        return self.geometry.cylinder_of(self.head_sector)

    def queue_depth(self) -> int:
        return len(self.queue)

    # --- request lifecycle -----------------------------------------------------

    def submit(self, request: DiskRequest) -> None:
        """Enqueue a request; service begins immediately if idle."""
        if request.last_sector >= self.geometry.total_sectors:
            raise ValueError(
                f"request [{request.sector}, {request.last_sector}] exceeds disk"
                f" of {self.geometry.total_sectors} sectors"
            )
        request.enqueue_time = self.engine.now
        self.queue.append(request)
        if not self.busy:
            self._start_next()

    def _start_next(self) -> None:
        if not self.queue:
            self.busy = False
            return
        self.busy = True
        request = self.scheduler.select(
            self.queue, self.head_sector, self.engine.now, self.ledger
        )
        self.queue.remove(request)
        breakdown = service_time(
            self.geometry,
            self.head_cylinder,
            self.engine.now,
            request.sector,
            request.nsectors,
        )
        request.start_time = self.engine.now
        request.seek_us = breakdown.seek_us
        request.rotation_us = breakdown.rotation_us
        request.transfer_us = breakdown.transfer_us
        self.engine.after(breakdown.total_us, self._complete, request)

    def _complete(self, request: DiskRequest) -> None:
        request.finish_time = self.engine.now
        self.head_sector = (request.last_sector + 1) % self.geometry.total_sectors
        self._charge(request)
        self.stats.record(request)
        # Pick the next request before waking the submitter: the paper's
        # fairness criterion is "checked after each disk request", and
        # a woken process may immediately submit more I/O.
        self._start_next()
        if request.on_complete is not None:
            request.on_complete(request)

    def _charge(self, request: DiskRequest) -> None:
        charges: Dict[int, int] = (
            request.charges
            if request.charges is not None
            else {request.spu_id: request.nsectors}
        )
        if isinstance(self.ledger, NullLedger):
            return
        for spu_id, nsectors in charges.items():
            self.ledger.charge(spu_id, nsectors, self.engine.now)
