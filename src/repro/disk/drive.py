"""The disk drive: queue, scheduler, mechanical model, and accounting.

One :class:`DiskDrive` serves one request at a time.  On each
completion it charges the transferred sectors to the owning SPUs'
decayed bandwidth counters (the "sectors transferred per second"
metric, Section 3.3) and asks its scheduler for the next request.

**Fault model** (see ``repro.faults``).  A drive can suffer *transient*
I/O errors — during an injected error window each service attempt fails
with a configured probability, and the drive retries with exponential
backoff until the request's deadline or the attempt budget runs out —
or die *permanently*, after which :meth:`DiskDrive.fail_permanently`
hands the queued and in-flight requests back to the caller (the kernel
fails them over to a surviving drive).  Both paths are deterministic:
error draws come from an RNG stream forked off the engine seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.spu import SHARED_SPU_ID, SPURegistry
from repro.disk.model import DiskGeometry, service_time
from repro.disk.request import DiskRequest, DiskStats
from repro.disk.schedulers import DiskScheduler, NullLedger
from repro.sim.engine import Engine, EventHandle
from repro.sim.units import MSEC, SEC


class DiskFailedError(RuntimeError):
    """Raised when I/O is submitted to a permanently dead drive with no
    failover hook installed."""


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff/deadline policy for transient disk errors.

    The first retry waits ``base_backoff_us``; each further retry
    doubles the wait (capped at ``max_backoff_us``).  A request stops
    retrying — and completes with ``failed=True`` — once it has made
    ``max_attempts`` attempts or the next attempt could not start
    before its deadline (``deadline_us`` after enqueue by default).
    """

    max_attempts: int = 8
    base_backoff_us: int = 1 * MSEC
    backoff_factor: float = 2.0
    max_backoff_us: int = 200 * MSEC
    deadline_us: int = 10 * SEC

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("retry policy needs at least one attempt")
        if self.base_backoff_us < 0 or self.max_backoff_us < 0:
            raise ValueError("backoff must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff factor must be >= 1")
        if self.deadline_us <= 0:
            raise ValueError("deadline must be positive")

    def backoff_us(self, attempts: int) -> int:
        """Backoff before the next attempt, after ``attempts`` failures."""
        backoff = self.base_backoff_us * self.backoff_factor ** max(0, attempts - 1)
        return min(self.max_backoff_us, int(backoff))


class SpuBandwidthLedger:
    """Bandwidth accounting backed by the SPU registry's decayed counters.

    The usage *ratio* divides the decayed sector count by the SPU's
    disk-bandwidth share weight, so an SPU entitled to twice the
    bandwidth fails the fairness criterion at twice the usage.
    """

    __slots__ = ("disk_id", "registry", "decay_period", "total_charged")

    def __init__(self, disk_id: int, registry: SPURegistry, decay_period: int = 500 * MSEC):
        self.disk_id = disk_id
        self.registry = registry
        self.decay_period = decay_period
        #: Cumulative (never-decayed) sectors charged per SPU; the
        #: sanitizer checks it against the drive's completed-request
        #: totals (conservation of charged bandwidth).
        self.total_charged: Dict[int, int] = {}

    def _share(self, spu_id: int) -> int:
        entitled = self.registry.get(spu_id).disk_bw().entitled
        return entitled if entitled > 0 else 1

    def usage_ratio(self, spu_id: int, now: int) -> float:
        spu = self.registry.get(spu_id)
        counter = spu.disk_counter(self.disk_id, self.decay_period, now)
        return counter.value(now) / self._share(spu_id)

    def charge(self, spu_id: int, nsectors: int, now: int) -> None:
        spu = self.registry.get(spu_id)
        spu.disk_counter(self.disk_id, self.decay_period, now).add(nsectors, now)
        self.total_charged[spu_id] = self.total_charged.get(spu_id, 0) + nsectors

    def is_background(self, spu_id: int) -> bool:
        return spu_id == SHARED_SPU_ID


# A handful of DiskDrive instances per machine; tests and the fault
# layer attach hooks (on_failed) and would fight a closed layout.
class DiskDrive:  # simlint: disable=SL401
    """A single disk with its queue and scheduler."""

    def __init__(
        self,
        engine: Engine,
        geometry: DiskGeometry,
        scheduler: DiskScheduler,
        ledger: Optional[SpuBandwidthLedger] = None,
        disk_id: int = 0,
        retry: Optional[RetryPolicy] = None,
        fault_rng: Optional[random.Random] = None,
    ):
        self.engine = engine
        self.geometry = geometry
        self.scheduler = scheduler
        self.ledger = ledger if ledger is not None else NullLedger()
        self.disk_id = disk_id
        self.queue: List[DiskRequest] = []
        self.stats = DiskStats()
        self.busy = False
        #: Head position as the sector just past the last transfer.
        self.head_sector = 0

        # --- fault state ---------------------------------------------------
        self.retry = retry if retry is not None else RetryPolicy()
        self.alive = True
        #: Transient errors are drawn until this time...
        self._fault_until = 0
        #: ...with this per-attempt probability.
        self._fault_rate = 0.0
        self._fault_rng = fault_rng if fault_rng is not None else random.Random(0)
        #: Request being serviced and its completion event, so a
        #: permanent failure can abort it.
        self._in_service: Optional[Tuple[DiskRequest, EventHandle]] = None
        #: Installed by the kernel: where I/O submitted to a dead drive
        #: goes (failover).  Without it, submitting to a dead drive
        #: raises :class:`DiskFailedError`.
        self.on_failed: Optional[Callable[[DiskRequest], None]] = None

    @property
    def head_cylinder(self) -> int:
        if self.head_sector >= self.geometry.total_sectors:
            return self.geometry.cylinders - 1
        return self.geometry.cylinder_of(self.head_sector)

    def queue_depth(self) -> int:
        return len(self.queue)

    # --- request lifecycle -----------------------------------------------------

    def submit(self, request: DiskRequest) -> None:
        """Enqueue a request; service begins immediately if idle.

        Submitting to a permanently failed drive routes the request to
        the :attr:`on_failed` failover hook (or raises
        :class:`DiskFailedError` when none is installed).
        """
        if not self.alive:
            if self.on_failed is not None:
                self.on_failed(request)  # simlint: dynamic=callback-field
                return
            raise DiskFailedError(f"disk {self.disk_id} has failed permanently")
        if request.last_sector >= self.geometry.total_sectors:
            raise ValueError(
                f"request [{request.sector}, {request.last_sector}] exceeds disk"
                f" of {self.geometry.total_sectors} sectors"
            )
        if request.enqueue_time < 0:
            # Preserved across retries and failover so wait/response
            # metrics cover the whole ordeal, not just the last attempt.
            request.enqueue_time = self.engine.now
        self.queue.append(request)
        if not self.busy:
            self._start_next()

    # --- fault injection --------------------------------------------------------

    def inject_transient(self, duration_us: int, error_rate: float = 1.0) -> None:
        """Make service attempts fail with ``error_rate`` probability
        for the next ``duration_us`` microseconds."""
        if duration_us < 0:
            raise ValueError(f"negative fault duration {duration_us}")
        if not 0.0 <= error_rate <= 1.0:
            raise ValueError(f"error rate must be in [0, 1], got {error_rate}")
        self._fault_until = max(self._fault_until, self.engine.now + duration_us)
        self._fault_rate = error_rate

    def fail_permanently(self) -> List[DiskRequest]:
        """Kill the drive.  Returns the orphaned requests — queued plus
        in-flight — for the caller to fail over.  Idempotent."""
        if not self.alive:
            return []
        self.alive = False
        orphans = list(self.queue)
        self.queue.clear()
        if self._in_service is not None:
            request, handle = self._in_service
            handle.cancel()
            # The aborted attempt never completed; reset its service
            # breakdown so the failover drive fills it in afresh.
            request.start_time = -1
            request.seek_us = request.rotation_us = request.transfer_us = 0
            orphans.insert(0, request)
            self._in_service = None
        self.busy = False
        return orphans

    def _fault_active(self) -> bool:
        return self.engine.now < self._fault_until and self._fault_rate > 0.0

    # --- service loop -----------------------------------------------------------

    def _start_next(self) -> None:
        if not self.queue or not self.alive:
            self.busy = False
            return
        self.busy = True
        request = self.scheduler.select(
            self.queue, self.head_sector, self.engine.now, self.ledger
        )
        self.queue.remove(request)
        breakdown = service_time(
            self.geometry,
            self.head_cylinder,
            self.engine.now,
            request.sector,
            request.nsectors,
        )
        request.start_time = self.engine.now
        request.seek_us = breakdown.seek_us
        request.rotation_us = breakdown.rotation_us
        request.transfer_us = breakdown.transfer_us
        request.attempts += 1
        handle = self.engine.after(breakdown.total_us, self._complete, request)
        self._in_service = (request, handle)

    def _deadline_of(self, request: DiskRequest) -> int:
        if request.deadline_us is not None:
            return request.deadline_us
        return request.enqueue_time + self.retry.deadline_us

    def _complete(self, request: DiskRequest) -> None:
        self._in_service = None
        if self._fault_active() and self._fault_rng.random() < self._fault_rate:
            self._error(request)
            return
        request.finish_time = self.engine.now
        self.head_sector = (request.last_sector + 1) % self.geometry.total_sectors
        self._charge(request)
        self.stats.record(request)
        # Pick the next request before waking the submitter: the paper's
        # fairness criterion is "checked after each disk request", and
        # a woken process may immediately submit more I/O.
        self._start_next()
        if request.on_complete is not None:
            request.on_complete(request)  # simlint: dynamic=callback-field

    def _error(self, request: DiskRequest) -> None:
        """A service attempt failed transiently: back off and retry, or
        give up once the attempt budget or deadline is exhausted."""
        self.stats.transient_errors += 1
        backoff = self.retry.backoff_us(request.attempts)
        exhausted = (
            request.attempts >= self.retry.max_attempts
            or self.engine.now + backoff > self._deadline_of(request)
        )
        if exhausted:
            request.failed = True
            request.finish_time = self.engine.now
            self.stats.record(request)
            self._start_next()
            if request.on_complete is not None:
                request.on_complete(request)  # simlint: dynamic=callback-field
            return
        self.stats.retries += 1
        self.engine.call_after(backoff, self._retry, request)
        self._start_next()

    def _retry(self, request: DiskRequest) -> None:
        """Re-queue a request after its backoff (competing normally)."""
        if not self.alive:
            if self.on_failed is not None:
                self.on_failed(request)  # simlint: dynamic=callback-field
                return
            request.failed = True
            request.finish_time = self.engine.now
            self.stats.record(request)
            if request.on_complete is not None:
                request.on_complete(request)  # simlint: dynamic=callback-field
            return
        self.queue.append(request)
        if not self.busy:
            self._start_next()

    def _charge(self, request: DiskRequest) -> None:
        charges: Dict[int, int] = (
            request.charges
            if request.charges is not None
            else {request.spu_id: request.nsectors}
        )
        if isinstance(self.ledger, NullLedger):
            return
        for spu_id, nsectors in charges.items():
            self.ledger.charge(spu_id, nsectors, self.engine.now)
