"""Zoned (zone-bit-recorded) disk geometry.

Drives of the early-90s generation after the HP 97560 record more
sectors per track on the longer outer cylinders.  This model groups
cylinders into zones, each with its own sectors-per-track; everything
else (two-regime seek curve, time-derived rotation, media-rate
transfer) matches :class:`~repro.disk.model.DiskGeometry`, and the two
are interchangeable anywhere a geometry is accepted.

The practical consequence — outer-zone transfers are faster, so hot
data placement matters — is measured by
``benchmarks/test_ablation_zoned.py``.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

#: One zone: (number of cylinders, sectors per track in the zone).
Zone = Tuple[int, int]


class ZonedGeometry:
    """A multi-zone disk; zone 0 is the outermost (highest density)."""

    def __init__(
        self,
        zones: Sequence[Zone],
        name: str = "ZonedDisk",
        tracks_per_cylinder: int = 19,
        rpm: int = 4002,
        seek_a_ms: float = 3.24,
        seek_b_ms: float = 0.400,
        seek_c_ms: float = 8.00,
        seek_e_ms: float = 0.008,
        seek_cutoff: int = 383,
        seek_scale: float = 1.0,
    ):
        if not zones:
            raise ValueError("a zoned disk needs at least one zone")
        if any(ncyl <= 0 or spt <= 0 for ncyl, spt in zones):
            raise ValueError("zones need positive cylinder and sector counts")
        self.name = name
        self.zones: List[Zone] = list(zones)
        self.tracks_per_cylinder = tracks_per_cylinder
        self.rpm = rpm
        self.seek_a_ms = seek_a_ms
        self.seek_b_ms = seek_b_ms
        self.seek_c_ms = seek_c_ms
        self.seek_e_ms = seek_e_ms
        self.seek_cutoff = seek_cutoff
        self.seek_scale = seek_scale

        # Cumulative tables: first cylinder and first sector per zone.
        self._zone_first_cyl: List[int] = []
        self._zone_first_sector: List[int] = []
        cyl = sector = 0
        for ncyl, spt in self.zones:
            self._zone_first_cyl.append(cyl)
            self._zone_first_sector.append(sector)
            cyl += ncyl
            sector += ncyl * tracks_per_cylinder * spt
        self.cylinders = cyl
        self.total_sectors = sector

    # --- zone lookup -------------------------------------------------------

    def zone_of_sector(self, sector: int) -> int:
        self._check_sector(sector)
        for i in range(len(self.zones) - 1, -1, -1):
            if sector >= self._zone_first_sector[i]:
                return i
        raise AssertionError("unreachable")  # pragma: no cover

    def sectors_per_track_at(self, sector: int) -> int:
        return self.zones[self.zone_of_sector(sector)][1]

    def _check_sector(self, sector: int) -> None:
        if not 0 <= sector < self.total_sectors:
            raise ValueError(
                f"sector {sector} outside disk (0..{self.total_sectors - 1})"
            )

    # --- derived timing ----------------------------------------------------

    @property
    def rotation_us(self) -> float:
        return 60_000_000.0 / self.rpm

    def sector_time_us_at(self, sector: int) -> float:
        return self.rotation_us / self.sectors_per_track_at(sector)

    # --- address mapping ------------------------------------------------------

    def cylinder_of(self, sector: int) -> int:
        zone = self.zone_of_sector(sector)
        _ncyl, spt = self.zones[zone]
        within = sector - self._zone_first_sector[zone]
        return self._zone_first_cyl[zone] + within // (spt * self.tracks_per_cylinder)

    def offset_of(self, sector: int) -> int:
        zone = self.zone_of_sector(sector)
        spt = self.zones[zone][1]
        within = sector - self._zone_first_sector[zone]
        return within % spt

    # --- timing ------------------------------------------------------------

    def seek_us(self, from_cyl: int, to_cyl: int) -> int:
        distance = abs(to_cyl - from_cyl)
        if distance == 0:
            return 0
        if distance < self.seek_cutoff:
            ms = self.seek_a_ms + self.seek_b_ms * math.sqrt(distance)
        else:
            ms = self.seek_c_ms + self.seek_e_ms * distance
        return round(ms * 1000.0 * self.seek_scale)

    def rotation_delay_us(self, at_time: int, target_offset: int) -> int:
        """Rotational wait, using the target zone's angular layout.

        ``target_offset`` is interpreted against the zone of the
        request being positioned (the caller computed it with
        :meth:`offset_of`); the zone's sector count defines the angle
        grid.  Same half-sector catch tolerance as the flat geometry.
        """
        # The drive hands us the offset only; recover the grid from it
        # being < spt of *some* zone is ambiguous, so the drive calls
        # service_time_zoned below instead for zoned disks.
        raise NotImplementedError(
            "use rotation_delay_at(at_time, sector) for zoned geometries"
        )

    def rotation_delay_at(self, at_time: int, sector: int) -> int:
        spt = self.sectors_per_track_at(sector)
        sector_time = self.rotation_us / spt
        current_angle = (at_time / sector_time) % spt
        delta = (self.offset_of(sector) - current_angle) % spt
        if delta > spt - 0.5:
            delta = 0.0
        return round(delta * sector_time)

    def transfer_us(self, sector: int, nsectors: int) -> int:
        """Media transfer; a run crossing zones pays each zone's rate."""
        self._check_sector(sector)
        self._check_sector(sector + nsectors - 1)
        total = 0.0
        remaining = nsectors
        position = sector
        while remaining > 0:
            zone = self.zone_of_sector(position)
            zone_end = (
                self._zone_first_sector[zone + 1]
                if zone + 1 < len(self.zones)
                else self.total_sectors
            )
            take = min(remaining, zone_end - position)
            total += take * (self.rotation_us / self.zones[zone][1])
            position += take
            remaining -= take
        return round(total)


def hp97560_zoned(seek_scale: float = 1.0, media_scale: int = 1) -> ZonedGeometry:
    """A zoned variant with the HP 97560's capacity split into three
    zones (outer tracks ~35% denser than inner), same seek curve."""
    base = 72 * media_scale
    return ZonedGeometry(
        zones=[
            (654, round(base * 1.2)),
            (654, base),
            (654, round(base * 0.85)),
        ],
        name="HP97560-zoned",
        seek_scale=seek_scale,
    )
