# simlint: skip-file  (host-side tool: reads os.environ by design)
"""SIMSAN — the runtime invariant sanitizer.

The static linter (:mod:`repro.lint`) proves the *code* follows the
determinism and accounting rules; SIMSAN checks that the *numbers* do,
while a simulation runs.  It hooks the engine's dispatch loop and
re-derives the kernel's conservation laws after events:

* **monotonic virtual time** — the clock never moves backwards (checked
  after *every* event, regardless of stride);
* **ledger sanity** — every SPU's (entitled, allowed, used) triple
  satisfies ``0 <= entitled <= allowed`` and ``0 <= used <= allowed``
  for every resource;
* **page conservation** — pages charged to SPUs plus the free list
  equals the machine total;
* **CPU conservation** — per-CPU busy time and per-SPU charged time are
  two views of the same microseconds, so their sums must agree, and
  neither may exceed the capacity the online CPUs actually offered;
* **disk-bandwidth conservation** — per drive, the sectors charged to
  SPU ledgers equal the sectors moved by successful completions;
* **no negative counters** anywhere in the above.

This complements the periodic :class:`repro.faults.invariants.InvariantWatchdog`:
the watchdog samples every clock tick and *records* violations; SIMSAN
checks at event granularity and *raises* at the first corrupt event, so
the failing event is still on the stack.

Enable it with ``REPRO_SIMSAN=1`` (any of ``1/true/yes/on``); the
kernel installs it at :meth:`~repro.kernel.kernel.Kernel.boot`.
``REPRO_SIMSAN_EVERY=N`` runs the full suite every N events instead of
every event (the time check always runs), which keeps the chaos soak
affordable on big runs.  Tests and tools can also install it directly::

    from repro.sanitizer import SimSanitizer
    san = SimSanitizer(kernel)
    san.install()
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Optional

from repro.disk.drive import SpuBandwidthLedger

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (kernel imports us)
    from repro.kernel.kernel import Kernel

#: Environment switch; truthy values enable the sanitizer at boot.
ENV_ENABLE = "REPRO_SIMSAN"
#: Full-suite stride (default 1 = every event).
ENV_EVERY = "REPRO_SIMSAN_EVERY"

_TRUTHY = ("1", "true", "yes", "on")


class SanitizerError(AssertionError):
    """An invariant broke; the message names the law, time, and books."""


class SimSanitizer:
    """Re-derives the kernel's conservation laws after events.

    One instance watches one kernel.  :meth:`install` hooks the
    engine's post-event callback; :meth:`check` is also callable
    directly (the kernel runs it once more when :meth:`Kernel.run`
    returns, so a violation in the final events cannot slip out).
    """

    __slots__ = ("kernel", "every", "checks_run", "events_seen", "_countdown", "_last_now")

    def __init__(self, kernel: "Kernel", every: int = 1):
        if every < 1:
            raise ValueError(f"check stride must be >= 1, got {every}")
        self.kernel = kernel
        self.every = every
        self.checks_run = 0
        self.events_seen = 0
        self._countdown = every
        self._last_now = kernel.engine.now

    # --- lifecycle ---------------------------------------------------------

    def install(self) -> None:
        self.kernel.engine.set_sanitizer(self._after_event)

    def uninstall(self) -> None:
        self.kernel.engine.set_sanitizer(None)

    # --- the hook ----------------------------------------------------------

    def _after_event(self) -> None:
        self.events_seen += 1
        now = self.kernel.engine.now
        if now < self._last_now:
            self._fail(
                "monotonic-time",
                f"clock moved backwards: {self._last_now}us -> {now}us",
            )
        self._last_now = now
        self._countdown -= 1
        if self._countdown <= 0:
            self._countdown = self.every
            self.check()

    # --- the laws ----------------------------------------------------------

    def check(self) -> None:
        """Run the full invariant suite once, raising on the first breach."""
        self.checks_run += 1
        kernel = self.kernel
        now = kernel.engine.now

        # Ledger sanity: the three-level model, re-derived from state
        # rather than trusted to the mutation-time checks.
        for spu in kernel.registry.all_spus():
            for resource, levels in spu.levels.items():
                if not 0 <= levels.entitled <= levels.allowed:
                    self._fail(
                        "ledger-sanity",
                        f"SPU {spu.spu_id} {resource.name}: entitled"
                        f" {levels.entitled} outside [0, allowed={levels.allowed}]",
                    )
                if not 0 <= levels.used <= levels.allowed:
                    self._fail(
                        "ledger-sanity",
                        f"SPU {spu.spu_id} {resource.name}: used"
                        f" {levels.used} outside [0, allowed={levels.allowed}]",
                    )

        # Page conservation.
        charged = sum(s.memory().used for s in kernel.registry.all_spus())
        free = kernel.memory.free_pages
        total = kernel.memory.total_pages
        if free < 0:
            self._fail("page-conservation", f"free list is negative ({free})")
        if charged + free != total:
            self._fail(
                "page-conservation",
                f"{charged} charged + {free} free != {total} total pages",
            )

        # CPU conservation: busy-per-CPU and charged-per-SPU are the
        # same microseconds, booked twice in _charge_slice.
        busy = 0
        for cpu_id, us in kernel.cpu_busy_us.items():
            if us < 0:
                self._fail("cpu-conservation", f"cpu {cpu_id} busy {us}us < 0")
            busy += us
        account = kernel.cpu_account.as_dict()
        charged_us = 0
        for spu_id, us in account.items():
            if us < 0:
                self._fail("cpu-conservation", f"SPU {spu_id} charged {us}us < 0")
            charged_us += us
        if busy != charged_us:
            self._fail(
                "cpu-conservation",
                f"per-CPU busy {busy}us != per-SPU charged {charged_us}us",
            )
        capacity = kernel.cpu_capacity_us(now)
        if busy > capacity:
            self._fail(
                "cpu-conservation",
                f"busy {busy}us exceeds offered capacity {capacity}us",
            )

        # Disk-bandwidth conservation, per drive with a real ledger.
        for drive in kernel.drives:
            ledger = drive.ledger
            if not isinstance(ledger, SpuBandwidthLedger):
                continue
            charged_sectors = 0
            for spu_id, nsectors in ledger.total_charged.items():
                if nsectors < 0:
                    self._fail(
                        "disk-conservation",
                        f"disk {drive.disk_id}: SPU {spu_id} charged"
                        f" {nsectors} sectors < 0",
                    )
                charged_sectors += nsectors
            if charged_sectors != drive.stats.ok_sectors:
                self._fail(
                    "disk-conservation",
                    f"disk {drive.disk_id}: {charged_sectors} sectors charged"
                    f" != {drive.stats.ok_sectors} moved by successful requests",
                )

    def _fail(self, law: str, detail: str) -> None:
        raise SanitizerError(
            f"SIMSAN [t={self.kernel.engine.now}us] {law}: {detail}"
        )


def enabled() -> bool:
    """Whether ``REPRO_SIMSAN`` asks for the sanitizer."""
    return os.environ.get(ENV_ENABLE, "").strip().lower() in _TRUTHY


def check_stride() -> int:
    """The configured full-suite stride (``REPRO_SIMSAN_EVERY``, >= 1)."""
    raw = os.environ.get(ENV_EVERY, "").strip()
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        raise ValueError(f"{ENV_EVERY} must be an integer, got {raw!r}") from None


def maybe_install(kernel: "Kernel") -> Optional[SimSanitizer]:
    """Install a sanitizer on ``kernel`` if the environment asks for one."""
    if not enabled():
        return None
    sanitizer = SimSanitizer(kernel, every=check_stride())
    sanitizer.install()
    return sanitizer
