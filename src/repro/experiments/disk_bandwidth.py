"""The disk-bandwidth isolation experiments: Tables 3 and 4.

Both run on a two-way machine with a single shared HP 97560 disk at the
paper's ×2 seek scaling (half seek latency) and cold file caches, and
compare three disk scheduling policies:

* **Pos** — stock IRIX C-SCAN, head position only;
* **Iso** — blind fairness, ignoring head position;
* **PIso** — the fairness criterion combined with head position.

Table 3 (*pmake-copy*): SPU 1 runs a pmake (~300 scattered requests),
SPU 2 copies a 20 MB file (~1050 mostly contiguous requests) on the
same disk.  The paper: PIso cuts the pmake's response ~39% and its
mean request wait ~76% versus Pos, costs the copy ~23%, and leaves the
mean disk latency about unchanged.

Table 4 (*big-and-small-copy*): a 500 KB copy against a 5 MB copy.
Both are sequential, so ignoring head position (Iso) pays ~30% extra
seek latency; PIso gets the fairness *and* keeps latency at the Pos
level, beating Iso for both jobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.api import Simulation, SimulationSpec, build, experiment
from repro.core.schemes import DiskSchedPolicy, IsolationParams, piso_scheme
from repro.disk.model import hp97560
from repro.kernel.machine import DiskSpec
from repro.sim.units import KB, MB, msecs
from repro.workloads.copy import CopyParams, copy_job, create_copy_files
from repro.workloads.pmake import PmakeParams, create_pmake_files, pmake_job

#: The pmake of the pmake-copy workload: scattered small requests and
#: repeated metadata writes.
TABLE3_PMAKE = PmakeParams(
    n_tasks=16,
    parallelism=2,
    compile_ms=200.0,
    src_kb=48,
    obj_kb=32,
    ws_pages=0,
    metadata_writes=4,
    read_chunk_kb=16,
    extent_sectors=16,
)
TABLE3_COPY = CopyParams(size_bytes=20 * MB, chunk_kb=16)

TABLE4_SMALL = CopyParams(size_bytes=500 * KB, chunk_kb=16)
TABLE4_BIG = CopyParams(size_bytes=5 * MB, chunk_kb=16)

POLICIES = (DiskSchedPolicy.POS, DiskSchedPolicy.ISO, DiskSchedPolicy.PISO)


@dataclass(frozen=True)
class DiskRow:
    """One row of Table 3 or Table 4."""

    policy: str
    #: Response time of each job, seconds.
    response_a_s: float
    response_b_s: float
    #: Mean request wait in the disk queue per SPU, milliseconds.
    wait_a_ms: float
    wait_b_ms: float
    #: Mean mechanical latency over all requests, milliseconds.
    latency_ms: float
    #: Mean seek component, milliseconds (the Iso-vs-PIso difference).
    seek_ms: float
    #: Total requests the disk served.
    requests: int


def _machine(
    policy: DiskSchedPolicy,
    seed: int,
    params: IsolationParams,
    spus: tuple,
) -> Simulation:
    scheme = piso_scheme(params).with_disk_policy(policy)
    return build(SimulationSpec(
        ncpus=2,
        memory_mb=44,
        scheme=scheme,
        spus=list(spus),
        disks=[DiskSpec(geometry=hp97560(seek_scale=0.5, media_scale=4))],
        seed=seed,
    ))


def run_pmake_copy(
    policy: DiskSchedPolicy,
    seed: int = 0,
    params: IsolationParams = IsolationParams(),
) -> DiskRow:
    """One Table 3 simulation: job A = pmake, job B = 20 MB copy."""
    sim = _machine(policy, seed, params, ("pmake", "copy"))

    pmake_files = create_pmake_files(
        sim.fs, mount=0, params=TABLE3_PMAKE, job_name="t3-pmake"
    )
    # Put the copy's 40 MB of source+destination in the middle of the
    # disk, away from most of the pmake's scattered extents.
    middle = sim.drives[0].geometry.total_sectors // 2
    src, dst = create_copy_files(
        sim.fs, 0, TABLE3_COPY, name="t3-copy", at_sector=middle
    )

    pm = sim.spawn(pmake_job(pmake_files, TABLE3_PMAKE), "pmake", name="pmake")
    cp = sim.spawn(copy_job(src, dst, TABLE3_COPY), "copy", name="copy")
    sim.run()

    stats = sim.drives[0].stats
    return DiskRow(
        policy=policy.value,
        response_a_s=pm.response_us / 1e6,
        response_b_s=cp.response_us / 1e6,
        wait_a_ms=stats.mean_wait_ms(sim.spu("pmake").spu_id),
        wait_b_ms=stats.mean_wait_ms(sim.spu("copy").spu_id),
        latency_ms=stats.mean_latency_ms(),
        seek_ms=stats.mean_seek_ms(),
        requests=stats.count(),
    )


def run_big_small_copy(
    policy: DiskSchedPolicy,
    seed: int = 0,
    params: IsolationParams = IsolationParams(),
) -> DiskRow:
    """One Table 4 simulation: job A = 500 KB copy, job B = 5 MB copy.

    The big copy sits in a distant disk region and issues its requests
    first (the paper notes it "happen[s] to issue requests to the disk
    earlier"), which under Pos lets it lock the small copy out.
    """
    sim = _machine(policy, seed, params, ("small", "big"))

    total = sim.drives[0].geometry.total_sectors
    small_src, small_dst = create_copy_files(
        sim.fs, 0, TABLE4_SMALL, name="t4-small", at_sector=total // 8
    )
    big_src, big_dst = create_copy_files(
        sim.fs, 0, TABLE4_BIG, name="t4-big", at_sector=(total * 5) // 8
    )

    big = sim.spawn(copy_job(big_src, big_dst, TABLE4_BIG), "big", name="big")
    # The small copy arrives a moment later, finding the queue already
    # full of the big copy's contiguous requests.
    holder = {}

    def start_small() -> None:
        holder["small"] = sim.spawn(
            copy_job(small_src, small_dst, TABLE4_SMALL), "small", name="small"
        )

    sim.engine.after(msecs(40), start_small)
    sim.run()
    small = holder["small"]

    stats = sim.drives[0].stats
    return DiskRow(
        policy=policy.value,
        response_a_s=small.response_us / 1e6,
        response_b_s=big.response_us / 1e6,
        wait_a_ms=stats.mean_wait_ms(sim.spu("small").spu_id),
        wait_b_ms=stats.mean_wait_ms(sim.spu("big").spu_id),
        latency_ms=stats.mean_latency_ms(),
        seek_ms=stats.mean_seek_ms(),
        requests=stats.count(),
    )


def _render_table3(results: Dict[str, DiskRow]) -> str:
    from repro.metrics.report import format_table

    rows = []
    for name, r in results.items():
        rows.append(
            [
                name,
                f"{r.response_a_s:.2f}",
                f"{r.response_b_s:.2f}",
                f"{r.wait_a_ms:.1f}",
                f"{r.wait_b_ms:.1f}",
                f"{r.latency_ms:.2f}",
            ]
        )
    return format_table(
        ["policy", "pmake s", "copy s", "wait pmk ms", "wait cpy ms", "avg lat ms"],
        rows,
        title="Table 3 — pmake-copy (paper: PIso cuts pmake ~39%, wait"
        " ~76%; copy +23%; latency flat)",
    )


def _render_table4(results: Dict[str, DiskRow]) -> str:
    from repro.metrics.report import format_table

    rows = []
    for name, r in results.items():
        paper = PAPER_TABLE4[name]
        rows.append(
            [
                name,
                f"{r.response_a_s:.2f}",
                f"{r.response_b_s:.2f}",
                f"{paper.response_a_s:.2f}/{paper.response_b_s:.2f}",
                f"{r.wait_a_ms:.1f}",
                f"{r.latency_ms:.2f}",
                f"{paper.latency_ms:.1f}",
            ]
        )
    return format_table(
        ["policy", "small s", "big s", "paper s/b", "wait small ms", "lat ms", "paper lat"],
        rows,
        title="Table 4 — big-and-small copy",
    )


@experiment("table3", title="Table 3 — pmake-copy", render=_render_table3)
def run_table_3(seed: int = 0) -> Dict[str, DiskRow]:
    return {p.value: run_pmake_copy(p, seed) for p in POLICIES}


@experiment(
    "table4", title="Table 4 — big-and-small copy", render=_render_table4,
    quick=True,
)
def run_table_4(seed: int = 0) -> Dict[str, DiskRow]:
    return {p.value: run_big_small_copy(p, seed) for p in POLICIES}


#: Paper's Table 4 (small/big copies): response s, wait ms, latency ms.
PAPER_TABLE4 = {
    "pos": DiskRow("pos", 0.93, 0.81, 155.8, 12.1, 6.4, 0.0, 0),
    "iso": DiskRow("iso", 0.56, 1.22, 68.9, 23.7, 8.2, 0.0, 0),
    "piso": DiskRow("piso", 0.28, 0.96, 31.9, 16.6, 6.6, 0.0, 0),
}

#: Paper's Table 3 headline ratios (PIso vs Pos).
PAPER_TABLE3_RATIOS = {
    "pmake_response_change": -0.39,
    "pmake_wait_change": -0.76,
    "copy_response_change": +0.23,
}
