"""Run every experiment and print paper-vs-measured tables.

This is the command-line entry point behind ``python -m
repro.experiments.runner`` — it regenerates every table and figure in
the paper's evaluation section and the ablations, printing the same
rows/series the paper reports next to the paper's numbers.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro.experiments.ablations import (
    run_bw_threshold_sweep,
    run_decay_sweep,
    run_fractional_partition,
    run_holddown_ablation,
    run_lock_ablation,
    run_migration_sweep,
    run_priority_inversion_ablation,
    run_reserve_sweep,
    run_revocation_ablation,
)
from repro.experiments.antagonist_isolation import run_antagonist_isolation
from repro.experiments.cpu_isolation import run_figure_5
from repro.experiments.fault_isolation import run_fault_isolation
from repro.experiments.disk_bandwidth import (
    PAPER_TABLE4,
    run_table_3,
    run_table_4,
)
from repro.experiments.memory_isolation import PAPER_FIG7, run_figure_7
from repro.experiments.network_isolation import run_network_table
from repro.experiments.pmake8 import PAPER_FIG2, PAPER_FIG3, run_figures_2_and_3
from repro.metrics.report import format_table


def report_figures_2_and_3(seed: int = 0) -> str:
    results = run_figures_2_and_3(seed=seed)
    rows: List[List[object]] = []
    for name, r in results.items():
        paper_b, paper_u = PAPER_FIG2[name]
        rows.append(
            [
                name,
                f"{r.fig2_balanced:.0f}",
                f"{r.fig2_unbalanced:.0f}",
                f"{paper_b:.0f}/{paper_u:.0f}",
                f"{r.fig3_unbalanced:.0f}",
                f"{PAPER_FIG3[name]:.0f}",
            ]
        )
    return format_table(
        ["scheme", "fig2 B", "fig2 U", "paper B/U", "fig3 U", "paper"],
        rows,
        title="Figures 2 & 3 — Pmake8 (percent of SMP-balanced)",
    )


def report_figure_5(seed: int = 0) -> str:
    results = run_figure_5(seed=seed)
    rows = [
        [name, f"{r.ocean:.0f}", f"{r.flashlite:.0f}", f"{r.vcs:.0f}"]
        for name, r in results.items()
    ]
    return format_table(
        ["scheme", "ocean", "flashlite", "vcs"],
        rows,
        title="Figure 5 — CPU isolation (percent of SMP; paper: Quo/PIso"
        " help Ocean, Quo alone hurts Flashlite/VCS)",
    )


def report_figure_7(seed: int = 0) -> str:
    results = run_figure_7(seed=seed)
    rows = []
    for name, r in results.items():
        rows.append(
            [
                name,
                f"{r.isolation_unbalanced:.0f}",
                f"{PAPER_FIG7['isolation'][name]:.0f}",
                f"{r.sharing_unbalanced:.0f}",
                f"{PAPER_FIG7['sharing'][name]:.0f}",
            ]
        )
    return format_table(
        ["scheme", "SPU1 U", "paper", "SPU2 U", "paper"],
        rows,
        title="Figure 7 — memory isolation (percent of SMP-balanced)",
    )


def report_table_3(seed: int = 0) -> str:
    rows = []
    for name, r in run_table_3(seed=seed).items():
        rows.append(
            [
                name,
                f"{r.response_a_s:.2f}",
                f"{r.response_b_s:.2f}",
                f"{r.wait_a_ms:.1f}",
                f"{r.wait_b_ms:.1f}",
                f"{r.latency_ms:.2f}",
            ]
        )
    return format_table(
        ["policy", "pmake s", "copy s", "wait pmk ms", "wait cpy ms", "avg lat ms"],
        rows,
        title="Table 3 — pmake-copy (paper: PIso cuts pmake ~39%, wait"
        " ~76%; copy +23%; latency flat)",
    )


def report_table_4(seed: int = 0) -> str:
    rows = []
    for name, r in run_table_4(seed=seed).items():
        paper = PAPER_TABLE4[name]
        rows.append(
            [
                name,
                f"{r.response_a_s:.2f}",
                f"{r.response_b_s:.2f}",
                f"{paper.response_a_s:.2f}/{paper.response_b_s:.2f}",
                f"{r.wait_a_ms:.1f}",
                f"{r.latency_ms:.2f}",
                f"{paper.latency_ms:.1f}",
            ]
        )
    return format_table(
        ["policy", "small s", "big s", "paper s/b", "wait small ms", "lat ms", "paper lat"],
        rows,
        title="Table 4 — big-and-small copy",
    )


def report_network(seed: int = 0) -> str:
    rows = []
    for name, r in run_network_table(seed=seed).items():
        rows.append(
            [name, f"{r.rpc_response_s:.2f}", f"{r.bulk_response_s:.2f}",
             f"{r.rpc_wait_ms:.2f}", f"{r.goodput_mbps:.1f}"]
        )
    return format_table(
        ["policy", "rpc s", "bulk s", "rpc wait ms", "goodput Mb/s"],
        rows,
        title="Network-bandwidth isolation (the paper's Section-5 sketch:"
        " disk policy minus head position)",
    )


def report_ablations(seed: int = 0) -> str:
    parts = []
    lock = run_lock_ablation(seed=seed)
    parts.append(
        f"Lock ablation (Section 3.4): mutex {lock.mutex_response_us / 1e6:.2f}s"
        f" -> readers/writer {lock.rwlock_response_us / 1e6:.2f}s"
        f" ({lock.improvement_percent:.0f}% better; paper: 20-30%)"
    )
    rows = [
        [f"{p.threshold:g}", f"{p.small_response_s:.2f}", f"{p.big_response_s:.2f}",
         f"{p.latency_ms:.2f}"]
        for p in run_bw_threshold_sweep(seed=seed)
    ]
    parts.append(
        format_table(
            ["threshold", "small s", "big s", "lat ms"],
            rows,
            title="BW-difference threshold sweep (0 = round-robin-like,"
            " inf = position-only)",
        )
    )
    rows = [
        [f"{p.threshold:g}", f"{p.small_response_s:.2f}", f"{p.big_response_s:.2f}"]
        for p in run_decay_sweep(seed=seed)
    ]
    parts.append(format_table(["decay ms", "small s", "big s"], rows,
                              title="Bandwidth-counter decay period sweep"))
    rows = [
        [f"{p.reserve_fraction:.2f}", f"{p.spu1_unbalanced_s:.2f}",
         f"{p.spu2_unbalanced_s:.2f}"]
        for p in run_reserve_sweep(seed=seed)
    ]
    parts.append(format_table(["reserve", "spu1 s", "spu2 s"], rows,
                              title="Memory Reserve Threshold sweep"))
    frac = run_fractional_partition(seed=seed)
    parts.append(
        "Fractional CPU partition (3 SPUs on 8 CPUs): "
        + ", ".join(f"{k}={v:.2f}s" for k, v in frac.cpu_seconds_by_spu.items())
        + f" (max imbalance {frac.max_imbalance_percent:.1f}%)"
    )
    revocation = run_revocation_ablation(seed=seed)
    parts.append(
        f"Revocation latency: tick {revocation.tick_latency_ms:.2f} ms/burst"
        f" vs IPI {revocation.ipi_latency_ms:.2f} ms/burst"
        f" ({revocation.speedup:.0f}x; paper suggests IPIs for interactive"
        " response-time guarantees)"
    )
    rows = [
        [f"{p.migration_cost_us}", p.scheme, f"{p.mean_response_s:.3f}"]
        for p in run_migration_sweep(seed=seed)
    ]
    parts.append(format_table(
        ["migration cost us", "scheme", "mean response s"], rows,
        title="Cache-affinity (migration) cost sweep — partitioning is"
        " itself an affinity mechanism",
    ))
    holddown = run_holddown_ablation(seed=seed)
    parts.append(
        f"Loan hold-down: {holddown.loans_without} loans granted without"
        f" vs {holddown.loans_with} with a 50 ms hold-down"
    )
    inversion = run_priority_inversion_ablation(seed=seed)
    parts.append(
        f"Priority inversion (Section 3.4 / [SRL90]): high-priority lock"
        f" wait {inversion.no_inheritance_wait_ms:.0f} ms ->"
        f" {inversion.inheritance_wait_ms:.0f} ms with inheritance"
        f" ({inversion.speedup:.1f}x)"
    )
    return "\n\n".join(parts)


def report_faults(seed: int = 0) -> str:
    rows = []
    for name, r in run_fault_isolation(seed=seed).items():
        rows.append(
            [
                name,
                f"{r.survivor_faulted_s:.2f}",
                f"{r.survivor_contract_s:.2f}",
                f"{r.degradation_ratio:.2f}",
                f"{r.victim_faulted_s:.2f}",
                r.transient_errors,
                r.renegotiations,
                r.violations,
            ]
        )
    return format_table(
        ["scheme", "faulted s", "contract s", "ratio", "victim s",
         "io errs", "reneg", "violations"],
        rows,
        title="Fault isolation — survivor response under mid-run disk death"
        " + 2-CPU hot-remove, vs its renegotiated contract share"
        " (ratio ~1 = isolation holds while hardware degrades)",
    )


def report_antagonists(seed: int = 0) -> str:
    result = run_antagonist_isolation(seed=seed)
    rows = []
    for row in result.records():
        rows.append(
            [
                row.antagonist,
                row.scheme,
                f"{row.victim_shared_s:.2f}",
                f"{row.victim_solo_s:.2f}",
                f"{row.slowdown:.2f}",
                row.overload.spawn_denials + row.overload.mem_denials
                + row.overload.io_throttled + row.overload.io_rejected,
                row.overload.throttles,
                row.overload.oom_kills + row.overload.guard_kills,
                row.violations,
            ]
        )
    return format_table(
        ["antagonist", "scheme", "shared s", "solo s", "slowdown",
         "pressure", "throttles", "kills", "violations"],
        rows,
        title="Antagonist isolation — victim slowdown next to an adversarial"
        " neighbour, vs its contract share (PIso should stay ~1.0;"
        " SMP collapses under fork/memory/disk bombs)",
    )


def main(argv: List[str] = sys.argv[1:]) -> int:
    """Run everything (or the sections named on the command line)."""
    sections = {
        "pmake8": report_figures_2_and_3,
        "fig5": report_figure_5,
        "fig7": report_figure_7,
        "table3": report_table_3,
        "table4": report_table_4,
        "network": report_network,
        "faults": report_faults,
        "antagonists": report_antagonists,
        "ablations": report_ablations,
    }
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "sections",
        nargs="*",
        metavar="section",
        help=f"sections to run (default: all); choose from {sorted(sections)}",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="base RNG seed shared by every experiment (default: 0)",
    )
    args = parser.parse_args(argv)
    chosen = args.sections if args.sections else list(sections)
    for name in chosen:
        if name not in sections:
            print(f"unknown section {name!r}; choose from {sorted(sections)}")
            return 2
        print(sections[name](seed=args.seed))
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
