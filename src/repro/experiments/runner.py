"""Run registered experiments and print paper-vs-measured tables.

This is the ``experiments`` subcommand behind ``python -m repro`` (and
still runnable as ``python -m repro.experiments.runner``).  It iterates
the experiment registry — every module in :mod:`repro.experiments`
registers its driver with :func:`repro.api.experiment` — fans the
selected experiments across worker processes with an
:class:`repro.parallel.Executor`, and prints each experiment's rendered
report in registration order, whatever order the workers finished in.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.api import ExperimentResult, ExperimentSpec, get, names, run_experiment
from repro.parallel import Executor, SweepPlan, values


def run_sections(
    sections: List[str],
    seed: int = 0,
    max_workers: Optional[int] = 1,
    timeout_s: Optional[float] = None,
) -> List[ExperimentResult]:
    """Run the named experiments; results in the order requested."""
    results, _retried = run_sections_with_stats(
        sections, seed=seed, max_workers=max_workers, timeout_s=timeout_s
    )
    return results


def run_sections_with_stats(
    sections: List[str],
    seed: int = 0,
    max_workers: Optional[int] = 1,
    timeout_s: Optional[float] = None,
    pool=None,
    cache: bool = False,
    cache_dir: Optional[str] = None,
) -> "tuple[List[ExperimentResult], int]":
    """Like :func:`run_sections`, plus the crash/timeout retry count.

    ``pool`` optionally shares a :class:`repro.parallel.WorkerPool`
    across callers; ``cache=True`` answers unchanged (name, seed) cells
    from the content-addressed sweep cache.
    """
    plan = SweepPlan(max_workers=max_workers, timeout_s=timeout_s,
                     cache=cache, cache_dir=cache_dir)
    payloads = [ExperimentSpec(name=name, seed=seed) for name in sections]
    outcomes = Executor(plan, pool=pool).run(run_experiment, payloads)
    return values(outcomes), sum(o.retries for o in outcomes)


def main(argv: List[str] = sys.argv[1:]) -> int:
    """Run everything (or the sections named on the command line)."""
    known = names()
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "sections",
        nargs="*",
        metavar="section",
        help=f"sections to run (default: all); choose from {sorted(known)}",
    )
    parser.add_argument(
        "--only",
        action="append",
        default=None,
        metavar="SECTION",
        help="run only this section (repeatable); equivalent to naming"
        " it positionally",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="base RNG seed shared by every experiment (default: 0)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes to fan experiments across"
        " (default: 1 = in-process; 0 = auto)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write every experiment's flat records as JSON",
    )
    parser.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="answer unchanged (section, seed) cells from the"
        " content-addressed sweep cache (default: off)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="sweep-cache directory (default: .repro-cache or"
        " $REPRO_CACHE_DIR)",
    )
    args = parser.parse_args(argv)
    named = list(args.sections) + list(args.only or [])
    chosen = named if named else list(known)
    for name in chosen:
        if name not in known:
            print(f"unknown section {name!r}; choose from {sorted(known)}")
            return 2

    max_workers = None if args.workers == 0 else args.workers
    results, retried = run_sections_with_stats(
        chosen, seed=args.seed, max_workers=max_workers,
        cache=args.cache, cache_dir=args.cache_dir,
    )
    for result in results:
        print(get(result.name).report(result.data))
        print()
    if retried:
        print(f"({retried} sweep cell(s) retried after worker"
              " crash/timeout)")

    if args.json is not None:
        import json

        with open(args.json, "w") as f:
            json.dump([r.payload() for r in results], f, indent=2, sort_keys=True)
        print(f"records written to {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
