"""The CPU-isolation experiment: Figure 5.

Compute-intensive jobs on an eight-way machine with 64 MB (Table 1,
second row) — memory is never a constraint; only CPU time matters.

* SPU 1: one four-process Ocean (barrier-synchronised gang).
* SPU 2: three Flashlite and three VCS single-process simulators.

Ten processes on eight processors.  Ocean's SPU is lightly loaded
(4 processes / 4 CPUs), the other heavily (6 / 4).  The paper's result:
PIso improves Ocean over SMP (isolation from the heavier SPU), with Quo
slightly better still; Flashlite/VCS do far worse under Quo than under
SMP or PIso (no sharing of Ocean's CPUs once Ocean finishes).
Response times are normalised per-application to the SMP case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.api import SimulationSpec, SpuSpec, build, experiment
from repro.core.schemes import SchemeConfig, piso_scheme, quota_scheme, smp_scheme
from repro.metrics.stats import mean_response_us, normalize
from repro.workloads.scientific import (
    OceanParams,
    SimulatorParams,
    ocean_processes,
    simulator_process,
)

#: Ocean: 4 processes, 2 s of CPU each in 20 barrier phases.
DEFAULT_OCEAN = OceanParams(nprocs=4, phases=20, phase_ms=100.0, ws_pages=64)
#: Flashlite and VCS run well past Ocean so sharing after Ocean's exit
#: is visible (the paper notes this result depends on relative durations).
DEFAULT_FLASHLITE = SimulatorParams(total_ms=6000.0, ws_pages=64)
DEFAULT_VCS = SimulatorParams(total_ms=5000.0, ws_pages=64)


@dataclass(frozen=True)
class CpuIsolationRun:
    """Mean response (us) per application for one scheme."""

    scheme: str
    ocean_us: float
    flashlite_us: float
    vcs_us: float


@dataclass(frozen=True)
class CpuIsolationResult:
    """Figure 5 bars for one scheme: percent of the SMP case."""

    scheme: str
    ocean: float
    flashlite: float
    vcs: float


def run_cpu_isolation(
    scheme: SchemeConfig,
    ocean: OceanParams = DEFAULT_OCEAN,
    flashlite: SimulatorParams = DEFAULT_FLASHLITE,
    vcs: SimulatorParams = DEFAULT_VCS,
    seed: int = 0,
) -> CpuIsolationRun:
    """One simulation of the CPU-isolation workload."""
    sim = build(SimulationSpec(
        ncpus=8,
        memory_mb=64,
        scheme=scheme,
        spus=[SpuSpec("ocean", swap_mount=0), SpuSpec("simulators", swap_mount=1)],
        disks=2,
        seed=seed,
    ))

    for i, behavior in enumerate(ocean_processes(ocean)):
        sim.spawn(behavior, "ocean", name=f"ocean{i}")
    for i in range(3):
        sim.spawn(simulator_process(flashlite), "simulators", name=f"flashlite{i}")
    for i in range(3):
        sim.spawn(simulator_process(vcs), "simulators", name=f"vcs{i}")

    sim.run()
    results = sim.results()

    def mean_for(prefix: str) -> float:
        return mean_response_us([r for r in results if r.name.startswith(prefix)])

    return CpuIsolationRun(
        scheme=scheme.name,
        ocean_us=mean_for("ocean"),
        flashlite_us=mean_for("flashlite"),
        vcs_us=mean_for("vcs"),
    )


def _render(results: Dict[str, CpuIsolationResult]) -> str:
    from repro.metrics.report import format_table

    rows = [
        [name, f"{r.ocean:.0f}", f"{r.flashlite:.0f}", f"{r.vcs:.0f}"]
        for name, r in results.items()
    ]
    return format_table(
        ["scheme", "ocean", "flashlite", "vcs"],
        rows,
        title="Figure 5 — CPU isolation (percent of SMP; paper: Quo/PIso"
        " help Ocean, Quo alone hurts Flashlite/VCS)",
    )


@experiment("fig5", title="Figure 5 — CPU isolation", render=_render, quick=True)
def run_figure_5(seed: int = 0) -> Dict[str, CpuIsolationResult]:
    """All three schemes, normalised to SMP per application."""
    runs = {
        s.name: run_cpu_isolation(s, seed=seed)
        for s in (smp_scheme(), quota_scheme(), piso_scheme())
    }
    base = runs["SMP"]
    return {
        name: CpuIsolationResult(
            scheme=name,
            ocean=normalize(run.ocean_us, base.ocean_us),
            flashlite=normalize(run.flashlite_us, base.flashlite_us),
            vcs=normalize(run.vcs_us, base.vcs_us),
        )
        for name, run in runs.items()
    }


#: Paper's qualitative Figure 5: Ocean improves under isolation (Quo
#: the ideal, PIso close); Flashlite/VCS collapse only under Quo.
PAPER_FIG5_SHAPE = {
    "ocean": {"SMP": 100.0, "Quo": "< 100, best", "PIso": "< 100"},
    "flashlite": {"SMP": 100.0, "Quo": "well over 100", "PIso": "about 100"},
    "vcs": {"SMP": 100.0, "Quo": "well over 100", "PIso": "about 100"},
}
