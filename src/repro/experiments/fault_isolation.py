"""Performance isolation under failing hardware.

The paper's claim is that an SPU's performance depends only on its
contracted share — its neighbours cannot take more than the contract
allows.  This experiment extends the claim to hardware faults: when a
disk dies mid-run and processors are hot-removed, the *contract* is
renegotiated over the surviving capacity, and a well-isolated survivor
should degrade only to its renegotiated share — not to whatever is
left after a misbehaving neighbour's failover traffic.

Two SPUs share an eight-CPU, two-disk machine:

* **survivor** — latency-sensitive jobs: compute phases interleaved
  with strided cold reads from its own disk (mount 0);
* **victim** — a disk-heavy aggressor: parallel file copies on mount 1
  plus pure CPU hogs.

Mid-run, disk 1 suffers a transient-error window, then two CPUs are
hot-removed, then disk 1 dies for good — dumping the victim's queued
copy traffic onto the survivor's disk.  The reference point (the
"renegotiated contract" machine) runs the survivor *alone* on its
post-fault contractual share: three CPUs (half of the six that remain)
and one disk.  The ratio

    survivor response on the faulted shared machine
    -----------------------------------------------
    survivor response on the contract-share machine

is the price of sharing a degrading machine.  Under PIso it stays
small (the survivor keeps its share through every renegotiation);
under SMP the victim's failover burst and global scheduling push it
far higher.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.api import SimulationSpec, SpuSpec, build, experiment
from repro.core.schemes import (
    IsolationParams,
    SchemeConfig,
    piso_scheme,
    quota_scheme,
    smp_scheme,
)
from repro.faults import (
    CpuRemove,
    DiskFailure,
    DiskTransient,
    FaultInjector,
    FaultPlan,
    InvariantWatchdog,
    Violation,
)
from repro.kernel.syscalls import Behavior, Compute, ReadFile
from repro.metrics.stats import mean_response_us
from repro.sim.units import KB, MB, msecs
from repro.workloads.copy import CopyParams, copy_job, create_copy_files


@dataclass(frozen=True)
class FaultScenario:
    """Machine shape, workload intensity, and fault schedule."""

    ncpus: int = 8
    cpus_removed: int = 2
    memory_mb: int = 32
    survivor_jobs: int = 3
    survivor_rounds: int = 18
    survivor_compute_ms: int = 60
    survivor_read_kb: int = 32
    survivor_read_every: int = 2
    victim_copies: int = 4
    victim_copy_mb: int = 4
    victim_hogs: int = 12
    victim_hog_ms: int = 1500
    transient_at_us: int = msecs(250)
    transient_duration_us: int = msecs(400)
    transient_error_rate: float = 0.5
    cpu_remove_at_us: int = msecs(500)
    disk_death_at_us: int = msecs(600)

    def plan(self) -> FaultPlan:
        """The fault schedule applied to the shared machine."""
        events: List = [
            DiskTransient(
                at_us=self.transient_at_us,
                disk=1,
                duration_us=self.transient_duration_us,
                error_rate=self.transient_error_rate,
            ),
            DiskFailure(at_us=self.disk_death_at_us, disk=1),
        ]
        for i in range(self.cpus_removed):
            events.append(CpuRemove(at_us=self.cpu_remove_at_us + i))
        return FaultPlan(events)


DEFAULT_SCENARIO = FaultScenario()


def _survivor_job(file, scenario: FaultScenario) -> Behavior:
    """Compute interleaved with strided cold reads (latency-sensitive)."""
    stride = 4 * scenario.survivor_read_kb * KB
    nbytes = scenario.survivor_read_kb * KB
    for i in range(scenario.survivor_rounds):
        yield Compute(msecs(scenario.survivor_compute_ms))
        if i % scenario.survivor_read_every == 0:
            offset = (i * stride) % (file.size_bytes - nbytes)
            yield ReadFile(file, offset, nbytes)


def _hog(duration_ms: int) -> Behavior:
    yield Compute(msecs(duration_ms))


@dataclass(frozen=True)
class FaultIsolationRun:
    """One simulation: survivor response plus fault bookkeeping."""

    scheme: str
    faulted: bool
    survivor_response_us: float
    victim_response_us: float
    transient_errors: int
    failed_requests: int
    renegotiations: int
    watchdog_checks: int
    violations: List[Violation]


def run_faulted(
    scheme: SchemeConfig,
    scenario: FaultScenario = DEFAULT_SCENARIO,
    seed: int = 0,
) -> FaultIsolationRun:
    """The shared machine with the full fault schedule applied."""
    sim = build(SimulationSpec(
        ncpus=scenario.ncpus,
        memory_mb=scenario.memory_mb,
        scheme=scheme,
        spus=[SpuSpec("survivor", swap_mount=0), SpuSpec("victim", swap_mount=1)],
        disks=2,
        seed=seed,
    ))
    kernel = sim.kernel
    survivor = sim.spu("survivor")
    victim = sim.spu("victim")

    watchdog = InvariantWatchdog(kernel)
    watchdog.start()
    FaultInjector(kernel, scenario.plan()).arm()

    for j in range(scenario.survivor_jobs):
        file = kernel.fs.create(
            0, f"survivor-{j}", 16 * scenario.survivor_read_kb * KB
        )
        kernel.spawn(
            _survivor_job(file, scenario), survivor, name=f"survivor-{j}"
        )
    params = CopyParams(size_bytes=scenario.victim_copy_mb * MB)
    for j in range(scenario.victim_copies):
        src, dst = create_copy_files(kernel.fs, 1, params, name=f"victim{j}")
        kernel.spawn(copy_job(src, dst, params), victim, name=f"copy-{j}")
    for j in range(scenario.victim_hogs):
        kernel.spawn(_hog(scenario.victim_hog_ms), victim, name=f"hog-{j}")

    kernel.run()
    results = sim.results()
    return FaultIsolationRun(
        scheme=scheme.name,
        faulted=True,
        survivor_response_us=mean_response_us(
            [r for r in results if r.spu_id == survivor.spu_id]
        ),
        victim_response_us=mean_response_us(
            [r for r in results if r.spu_id == victim.spu_id]
        ),
        transient_errors=sum(d.stats.transient_errors for d in kernel.drives),
        failed_requests=sum(d.stats.failed_requests for d in kernel.drives),
        renegotiations=kernel.renegotiations,
        watchdog_checks=watchdog.checks_run,
        violations=list(watchdog.violations),
    )


def run_contract_share(
    scheme: SchemeConfig,
    scenario: FaultScenario = DEFAULT_SCENARIO,
    seed: int = 0,
) -> FaultIsolationRun:
    """The survivor alone on its renegotiated contractual share.

    After the faults, the shared machine has ``ncpus - cpus_removed``
    processors and one disk for two equal SPUs — so the survivor's
    contract entitles it to half the surviving CPUs, half the memory,
    and a fair share of the one disk.  Here it gets exactly that, with
    no neighbour: the response time *the contract promises*.
    """
    sim = build(SimulationSpec(
        ncpus=(scenario.ncpus - scenario.cpus_removed) // 2,
        memory_mb=scenario.memory_mb // 2,
        scheme=scheme,
        spus=["survivor"],
        disks=1,
        seed=seed,
    ))
    kernel = sim.kernel
    survivor = sim.spu("survivor")
    for j in range(scenario.survivor_jobs):
        file = kernel.fs.create(
            0, f"survivor-{j}", 16 * scenario.survivor_read_kb * KB
        )
        kernel.spawn(
            _survivor_job(file, scenario), survivor, name=f"survivor-{j}"
        )
    kernel.run()
    results = sim.results()
    return FaultIsolationRun(
        scheme=scheme.name,
        faulted=False,
        survivor_response_us=mean_response_us(results),
        victim_response_us=0.0,
        transient_errors=0,
        failed_requests=0,
        renegotiations=kernel.renegotiations,
        watchdog_checks=0,
        violations=[],
    )


@dataclass(frozen=True)
class FaultIsolationResult:
    """Faulted-vs-contract comparison for one scheme."""

    scheme: str
    #: Survivor mean response on the degrading shared machine (s).
    survivor_faulted_s: float
    #: Survivor mean response on its contract-share machine (s).
    survivor_contract_s: float
    #: faulted / contract — 1.0 means faults cost the survivor nothing
    #: beyond what the renegotiated contract already concedes.
    degradation_ratio: float
    victim_faulted_s: float
    transient_errors: int
    failed_requests: int
    renegotiations: int
    watchdog_checks: int
    violations: int


def _render(results: Dict[str, FaultIsolationResult]) -> str:
    from repro.metrics.report import format_table

    rows = []
    for name, r in results.items():
        rows.append(
            [
                name,
                f"{r.survivor_faulted_s:.2f}",
                f"{r.survivor_contract_s:.2f}",
                f"{r.degradation_ratio:.2f}",
                f"{r.victim_faulted_s:.2f}",
                r.transient_errors,
                r.renegotiations,
                r.violations,
            ]
        )
    return format_table(
        ["scheme", "faulted s", "contract s", "ratio", "victim s",
         "io errs", "reneg", "violations"],
        rows,
        title="Fault isolation — survivor response under mid-run disk death"
        " + 2-CPU hot-remove, vs its renegotiated contract share"
        " (ratio ~1 = isolation holds while hardware degrades)",
    )


@experiment("faults", title="Fault isolation", render=_render)
def run_fault_isolation(
    scenario: FaultScenario = DEFAULT_SCENARIO, seed: int = 0
) -> Dict[str, FaultIsolationResult]:
    """Faulted and contract-share runs for every scheme.

    Alongside the three paper schemes, a ``PIso/ipi`` variant is
    included: identical except loans are revoked by immediate IPI
    instead of at the next clock tick.  On this workload essentially
    the entire residual PIso degradation is tick-revocation latency —
    each read completion wakes the survivor onto a home CPU currently
    loaned to a victim hog, costing up to one 10 ms tick.
    """
    schemes = [
        ("SMP", smp_scheme()),
        ("Quo", quota_scheme()),
        ("PIso", piso_scheme()),
        ("PIso/ipi", piso_scheme(IsolationParams(revocation_mode="ipi"))),
    ]
    out: Dict[str, FaultIsolationResult] = {}
    for label, scheme in schemes:
        faulted = run_faulted(scheme, scenario, seed=seed)
        contract = run_contract_share(scheme, scenario, seed=seed)
        out[label] = FaultIsolationResult(
            scheme=label,
            survivor_faulted_s=faulted.survivor_response_us / 1e6,
            survivor_contract_s=contract.survivor_response_us / 1e6,
            degradation_ratio=(
                faulted.survivor_response_us / contract.survivor_response_us
            ),
            victim_faulted_s=faulted.victim_response_us / 1e6,
            transient_errors=faulted.transient_errors,
            failed_requests=faulted.failed_requests,
            renegotiations=faulted.renegotiations,
            watchdog_checks=faulted.watchdog_checks,
            violations=len(faulted.violations),
        )
    return out
