"""Performance isolation under adversarial software.

PR 1 stressed the paper's isolation claim with failing hardware; this
experiment stresses it with *hostile neighbours*.  A latency-sensitive
victim SPU shares a machine with an attacker SPU running one antagonist
from :mod:`repro.antagonists` — a fork bomb, a memory bomb, a disk
flooder, a buffer-cache polluter, a kernel-lock hogger, or a metadata
storm.  The reference point is the victim alone on its contractual
share (half the CPUs, half the memory, the one disk).  The ratio

    victim response sharing with the antagonist
    -------------------------------------------
    victim response on its contract-share machine

is the price of a hostile neighbour.  Under PIso it should stay near
1.0 for *every* antagonist — that is the paper's claim, extended to
adversaries the original benchmarks never threw at it.  Under SMP the
fork bomb floods the global run queue, the memory bomb steals the
victim's pages through global replacement, and the disk flooder queues
megabytes ahead of every victim read.

All runs — including SMP — get the same hardened kernel: per-SPU
process limits, I/O admission control, and the
:class:`~repro.faults.OverloadGuard` escalation ladder.  The hardening
caps how *large* an antagonist can grow; the point of the experiment is
that resource partitioning, not the overload guard, is what protects
the victim's latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import random

from repro.antagonists import ANTAGONIST_KINDS, launch
from repro.api import SimulationSpec, build, experiment
from repro.core.schemes import SchemeConfig, piso_scheme, quota_scheme, smp_scheme
from repro.core.spu import SPU
from repro.faults import InvariantWatchdog, OverloadGuard
from repro.kernel.kernel import Kernel
from repro.kernel.locks import KernelLock
from repro.kernel.syscalls import (
    Acquire,
    Behavior,
    Compute,
    ReadFile,
    Release,
    SetWorkingSet,
)
from repro.sim.units import KB, MSEC, SEC, msecs


@dataclass(frozen=True)
class AntagonistScenario:
    """Machine shape, victim workload, and guard tuning."""

    ncpus: int = 8
    memory_mb: int = 32
    victim_jobs: int = 6
    victim_rounds: int = 24
    victim_compute_ms: int = 25
    victim_read_kb: int = 8
    victim_read_every: int = 2
    victim_ws_pages: int = 512
    victim_lock_hold_us: int = 200
    antagonist_scale: float = 1.0
    #: Overload-guard tuning shared by every run.
    guard_pressure_threshold: int = 40
    guard_throttle_after: int = 2
    guard_kill_after: int = 4
    #: Hard stop for a shared run even if the victim never finishes.
    horizon_us: int = 120 * SEC


DEFAULT_SCENARIO = AntagonistScenario()


def _schemes() -> List[Tuple[str, SchemeConfig]]:
    return [
        ("SMP", smp_scheme()),
        ("Quo", quota_scheme()),
        ("PIso", piso_scheme()),
    ]


def _victim_job(file, lock: KernelLock, scenario: AntagonistScenario) -> Behavior:
    """Compute + cold strided reads + brief shared-lock sections.

    The victim touches every resource path an antagonist attacks: it
    holds anonymous memory (the memory bomb's target), reads through
    the buffer cache and disk (the flooder's and polluter's), and takes
    the shared kernel lock in read mode (the hogger's).
    """
    nbytes = scenario.victim_read_kb * KB
    stride = 4 * nbytes
    yield SetWorkingSet(pages=scenario.victim_ws_pages)
    for i in range(scenario.victim_rounds):
        yield Acquire(lock, shared=True)
        yield Compute(scenario.victim_lock_hold_us)
        yield Release(lock)
        yield Compute(msecs(scenario.victim_compute_ms))
        if i % scenario.victim_read_every == 0:
            offset = (i * stride) % (file.size_bytes - nbytes)
            yield ReadFile(file, offset, nbytes)
    yield SetWorkingSet(pages=0)


@dataclass(frozen=True)
class OverloadStats:
    """What the hardened kernel did to the attacker during one run."""

    spawn_denials: int
    mem_denials: int
    io_throttled: int
    io_rejected: int
    oom_kills: int
    throttles: int
    guard_kills: int


@dataclass(frozen=True)
class AntagonistRow:
    """One (antagonist, scheme) cell of the comparison."""

    antagonist: str
    scheme: str
    victim_shared_s: float
    victim_solo_s: float
    #: shared / solo — 1.0 means the antagonist cost the victim nothing.
    slowdown: float
    overload: OverloadStats
    watchdog_checks: int
    violations: int


@dataclass(frozen=True)
class AntagonistIsolationResult:
    """The full antagonist x scheme matrix for one seed."""

    seed: int
    #: rows[antagonist][scheme]
    rows: Dict[str, Dict[str, AntagonistRow]]

    def records(self) -> List[AntagonistRow]:
        """Flat row list, ready for :mod:`repro.metrics.export`."""
        return [
            self.rows[kind][scheme]
            for kind in sorted(self.rows)
            for scheme in self.rows[kind]
        ]


def _make_victim(kernel: Kernel, victim: SPU, lock: KernelLock,
                 scenario: AntagonistScenario) -> List:
    procs = []
    nbytes = scenario.victim_read_kb * KB
    for j in range(scenario.victim_jobs):
        file = kernel.fs.create(0, f"victim-{j}", 16 * nbytes)
        procs.append(
            kernel.spawn(_victim_job(file, lock, scenario), victim,
                         name=f"victim-{j}")
        )
    return procs


def _run_until_victim_done(kernel: Kernel, victim_procs: List,
                           horizon_us: int) -> None:
    """Advance the simulation until the victim finishes (or the horizon).

    Antagonists may still be mid-rampage — fork bombs do not politely
    exit — so the run is stepped and abandoned once every victim
    process is done, rather than drained to quiescence.
    """
    step = 250 * MSEC
    while any(p.alive for p in victim_procs):
        target = min(kernel.engine.now + step, horizon_us)
        kernel.run(until=target)
        if kernel.engine.now >= horizon_us:
            break


def _mean_response_s(procs: List) -> float:
    done = [p for p in procs if not p.alive]
    if not done:
        return float("inf")
    return sum(p.response_us for p in done) / len(done) / 1e6


def run_shared(
    scheme: SchemeConfig,
    kind: str,
    scenario: AntagonistScenario = DEFAULT_SCENARIO,
    seed: int = 0,
) -> Tuple[float, OverloadStats, int, int]:
    """Victim + one antagonist on the shared machine.

    Returns (victim mean response seconds, overload stats, watchdog
    checks, violation count).
    """
    sim = build(SimulationSpec(
        ncpus=scenario.ncpus,
        memory_mb=scenario.memory_mb,
        scheme=scheme,
        spus=["victim", "attacker"],
        disks=1,
        seed=seed,
    ))
    kernel = sim.kernel
    victim = sim.spu("victim")
    attacker = sim.spu("attacker")

    lock = KernelLock("inode", reader_writer=True, inheritance=True)
    watchdog = InvariantWatchdog(kernel)
    watchdog.start()
    guard = OverloadGuard(
        kernel,
        pressure_threshold=scenario.guard_pressure_threshold,
        throttle_after=scenario.guard_throttle_after,
        kill_after=scenario.guard_kill_after,
    )
    guard.start()

    victim_procs = _make_victim(kernel, victim, lock, scenario)
    rng = random.Random(f"{seed}/antagonist/{kind}")
    launch(kernel, attacker, kind, rng, mount=0, shared_lock=lock,
           scale=scenario.antagonist_scale)

    _run_until_victim_done(kernel, victim_procs, scenario.horizon_us)

    spu_id = attacker.spu_id
    stats = OverloadStats(
        spawn_denials=kernel.spawn_denials.get(spu_id, 0),
        mem_denials=kernel.memory.total_denials.get(spu_id, 0),
        io_throttled=kernel.io_throttled.get(spu_id, 0),
        io_rejected=kernel.io_rejected.get(spu_id, 0),
        oom_kills=kernel.oom_kills.get(spu_id, 0),
        throttles=sum(1 for e in guard.escalations if e.stage == "throttle"),
        guard_kills=sum(1 for e in guard.escalations if e.stage == "kill"),
    )
    return (
        _mean_response_s(victim_procs),
        stats,
        watchdog.checks_run,
        len(watchdog.violations),
    )


def run_solo(
    scheme: SchemeConfig,
    scenario: AntagonistScenario = DEFAULT_SCENARIO,
    seed: int = 0,
) -> float:
    """The victim alone on its contract share: half CPUs, half memory."""
    sim = build(SimulationSpec(
        ncpus=scenario.ncpus // 2,
        memory_mb=scenario.memory_mb // 2,
        scheme=scheme,
        spus=["victim"],
        disks=1,
        seed=seed,
    ))
    lock = KernelLock("inode", reader_writer=True, inheritance=True)
    victim_procs = _make_victim(sim.kernel, sim.spu("victim"), lock, scenario)
    sim.run()
    return _mean_response_s(victim_procs)


def _render(result: AntagonistIsolationResult) -> str:
    from repro.metrics.report import format_table

    rows = []
    for row in result.records():
        rows.append(
            [
                row.antagonist,
                row.scheme,
                f"{row.victim_shared_s:.2f}",
                f"{row.victim_solo_s:.2f}",
                f"{row.slowdown:.2f}",
                row.overload.spawn_denials + row.overload.mem_denials
                + row.overload.io_throttled + row.overload.io_rejected,
                row.overload.throttles,
                row.overload.oom_kills + row.overload.guard_kills,
                row.violations,
            ]
        )
    return format_table(
        ["antagonist", "scheme", "shared s", "solo s", "slowdown",
         "pressure", "throttles", "kills", "violations"],
        rows,
        title="Antagonist isolation — victim slowdown next to an adversarial"
        " neighbour, vs its contract share (PIso should stay ~1.0;"
        " SMP collapses under fork/memory/disk bombs)",
    )


@experiment("antagonists", title="Antagonist isolation", render=_render)
def run_antagonist_isolation(
    scenario: AntagonistScenario = DEFAULT_SCENARIO,
    seed: int = 0,
    kinds: Optional[List[str]] = None,
) -> AntagonistIsolationResult:
    """The full matrix: every antagonist against every scheme."""
    kinds = list(kinds) if kinds is not None else list(ANTAGONIST_KINDS)
    solo: Dict[str, float] = {}
    rows: Dict[str, Dict[str, AntagonistRow]] = {}
    for kind in kinds:
        rows[kind] = {}
        for label, scheme in _schemes():
            if label not in solo:
                solo[label] = run_solo(scheme, scenario, seed=seed)
            shared_s, overload, checks, violations = run_shared(
                scheme, kind, scenario, seed=seed
            )
            rows[kind][label] = AntagonistRow(
                antagonist=kind,
                scheme=label,
                victim_shared_s=shared_s,
                victim_solo_s=solo[label],
                slowdown=shared_s / solo[label],
                overload=overload,
                watchdog_checks=checks,
                violations=violations,
            )
    return AntagonistIsolationResult(seed=seed, rows=rows)
