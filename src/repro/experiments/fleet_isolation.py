"""Fleet-level isolation: losing a machine must cost only the contract.

The paper's isolation claim is per-machine: an SPU's performance
depends only on its contracted share.  This experiment lifts it to the
fleet: when one of four machines crashes, its SPUs are checkpointed
and re-placed on the survivors under SLO admission control — admitted
in full, *degraded* to an explicit renegotiated fraction, or *shed*
with the refusal recorded.  The claim under test is that afterwards
every surviving SPU still attains its (possibly renegotiated)
contract, bounded below by :data:`ATTAINMENT_BOUND`.

Four machines of four CPUs each.  Machines 0–2 host a service (two
jobs) and a batch SPU (four jobs), 1.5 CPUs of demand each — loaded
but not full.  Machine 3 is full: a service, a batch SPU, and a
``scratch`` tenant whose SLO floor (0.9) no survivor's spare capacity
can honour.  At 300 ms machine 3 crashes; deterministically, the
controller sheds ``scratch-3``, degrades ``svc-3`` to 2/3 of its
contract, and admits ``batch-3`` in full.

*Attainment* is measured over the post-crash window: the CPU time an
SPU's completed rounds represent, divided by what its renegotiated
contract promises (demand × fraction × window).  Under PIso the
contract is enforced by entitlements, so every surviving SPU stays
within the bound.  Under SMP the machine is time-shared per *process*
— a two-job service beside a four-job batch SPU gets a third of the
machine instead of its contracted half — so the minimum attainment
falls well below the bound: the fleet kept every SPU placed, but not
isolated.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional

from repro.api import experiment
from repro.faults.fleet import FleetFaultPlan, MachineCrash
from repro.fleet.runner import FleetResult, run_fleet
from repro.fleet.spec import FleetMachineSpec, FleetSpec, FleetSpuSpec
from repro.sim.units import MSEC

#: Every surviving (non-shed) SPU must attain at least this fraction of
#: its renegotiated contract over the post-crash window.
ATTAINMENT_BOUND = 0.75

#: The crash instant and the horizon (the window is the difference).
CRASH_AT_US = 300 * MSEC
HORIZON_US = 1000 * MSEC


def fleet_isolation_spec(scheme: str, seed: int = 0) -> FleetSpec:
    """The 4-machine fleet whose last machine crashes mid-run."""
    machines = [FleetMachineSpec(ncpus=4, memory_mb=16) for _ in range(4)]
    spus: List[FleetSpuSpec] = []
    placement: Dict[str, int] = {}

    def place(spu: FleetSpuSpec, machine: int) -> None:
        spus.append(spu)
        placement[spu.name] = machine

    for i in range(3):
        place(FleetSpuSpec(
            name=f"svc-{i}", demand_cpus=1.5, slo_min_fraction=0.5,
            jobs=2, rounds=400, compute_us=5000,
        ), i)
        place(FleetSpuSpec(
            name=f"batch-{i}", demand_cpus=1.5, slo_min_fraction=0.5,
            jobs=4, rounds=400, compute_us=5000,
        ), i)
    # Machine 3 is committed to capacity: 1.5 + 1.0 + 1.5 = 4 CPUs.
    place(FleetSpuSpec(
        name="svc-3", demand_cpus=1.5, slo_min_fraction=0.5,
        jobs=2, rounds=400, compute_us=5000,
    ), 3)
    place(FleetSpuSpec(
        name="batch-3", demand_cpus=1.0, slo_min_fraction=0.5,
        jobs=4, rounds=400, compute_us=5000,
    ), 3)
    place(FleetSpuSpec(
        name="scratch-3", demand_cpus=1.5, slo_min_fraction=0.9,
        jobs=2, rounds=400, compute_us=5000,
    ), 3)

    return FleetSpec(
        machines=machines,
        spus=spus,
        placement=placement,
        scheme=scheme,
        seed=seed,
        horizon_us=HORIZON_US,
        faults=FleetFaultPlan([MachineCrash(at_us=CRASH_AT_US, machine=3)]),
    )


def window_attainments(result: FleetResult) -> Dict[str, float]:
    """Post-crash contract attainment per surviving (non-shed) SPU.

    ``rounds × compute_us`` over the crash→horizon window is the CPU
    time the SPU actually got; ``demand × fraction × window`` is what
    its renegotiated contract promises.
    """
    spec = result.spec
    crash_us = min(e.at_us for e in spec.faults)
    at_crash: Dict[str, int] = {}
    for when, rounds in result.snapshots:
        if when <= crash_us:
            at_crash = rounds
    window_us = spec.horizon_us - crash_us
    out: Dict[str, float] = {}
    for spu in spec.spus:
        if spu.name in result.shed:
            continue
        placed = result.placements.get(spu.name)
        fraction = placed[1] if placed is not None else Fraction(1)
        promised_us = float(
            Fraction(spu.demand_cpus) * fraction * window_us
        )
        rounds_w = result.progress[spu.name] - at_crash.get(spu.name, 0)
        out[spu.name] = (rounds_w * spu.compute_us) / promised_us
    return out


@dataclass(frozen=True)
class FleetIsolationResult:
    """One scheme's fleet run, reduced to the isolation verdict."""

    scheme: str
    #: Worst post-crash attainment over surviving SPUs, and who it was.
    min_attainment: float
    min_attainment_spu: str
    mean_attainment: float
    #: Whether every survivor met :data:`ATTAINMENT_BOUND`.
    isolated: bool
    admitted: int
    degraded: int
    shed: int
    violations: int
    #: The fleet journal digest (byte-identity handle).
    digest: str


def run_fleet_scheme(scheme: str, seed: int = 0) -> FleetResult:
    """One scheme's raw fleet run (tests reach for the full result)."""
    return run_fleet(fleet_isolation_spec(scheme, seed=seed))


def _summarise(scheme: str, result: FleetResult) -> FleetIsolationResult:
    attainments = window_attainments(result)
    worst: Optional[str] = None
    for name, value in sorted(attainments.items()):
        if worst is None or value < attainments[worst]:
            worst = name
    actions = [d.action for d in result.decisions]
    return FleetIsolationResult(
        scheme=scheme,
        min_attainment=attainments[worst] if worst else 0.0,
        min_attainment_spu=worst or "-",
        mean_attainment=(
            sum(attainments.values()) / len(attainments) if attainments else 0.0
        ),
        isolated=bool(attainments) and all(
            v >= ATTAINMENT_BOUND for v in attainments.values()
        ),
        admitted=actions.count("admit"),
        degraded=actions.count("degrade"),
        shed=actions.count("shed"),
        violations=len(result.violations),
        digest=result.digest(),
    )


def _render(results: Dict[str, FleetIsolationResult]) -> str:
    from repro.metrics.report import format_table

    rows = []
    for name, r in results.items():
        rows.append([
            name,
            f"{r.min_attainment:.2f}",
            r.min_attainment_spu,
            f"{r.mean_attainment:.2f}",
            "yes" if r.isolated else "NO",
            f"{r.admitted}/{r.degraded}/{r.shed}",
            r.violations,
            r.digest,
        ])
    return format_table(
        ["scheme", "min attain", "worst SPU", "mean attain",
         f">= {ATTAINMENT_BOUND:.2f}", "adm/deg/shed", "violations",
         "digest"],
        rows,
        title="Fleet isolation — losing 1 of 4 machines: post-crash contract"
        " attainment of surviving SPUs after SLO-driven failover"
        " (PIso holds every survivor's renegotiated contract; SMP does not)",
    )


@experiment("fleet_isolation", title="Fleet isolation", render=_render)
def run_fleet_isolation(seed: int = 0) -> Dict[str, FleetIsolationResult]:
    """The fleet run per scheme, summarised to the isolation verdict."""
    out: Dict[str, FleetIsolationResult] = {}
    for label, scheme in (("SMP", "smp"), ("Quo", "quo"),
                          ("PIso", "piso"), ("Stride", "stride")):
        out[label] = _summarise(label, run_fleet_scheme(scheme, seed=seed))
    return out
