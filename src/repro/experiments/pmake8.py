"""The Pmake8 experiment: Figures 2 and 3.

Eight SPUs on an eight-way machine with 44 MB of memory and a separate
fast disk per SPU (Table 1, first row).  Two job placements (Figure 1):

* **balanced** — one pmake job per SPU (8 jobs); the baseline.
* **unbalanced** — SPUs 1–4 run one job, SPUs 5–8 run two (12 jobs).

Figure 2 (isolation): mean response of the jobs in SPUs 1–4, balanced
vs unbalanced, normalised to SMP-balanced.  A kernel with good
isolation keeps the unbalanced bar at the balanced level; the paper
measured SMP at 156%.

Figure 3 (sharing): mean response of the jobs in SPUs 5–8 in the
unbalanced placement, same normalisation.  Paper: SMP 156, Quo 187,
PIso 146 — PIso beats even SMP because the light SPUs finish early and
their resources are lent out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.api import SimulationSpec, SpuSpec, build, experiment
from repro.core.schemes import SchemeConfig, piso_scheme, quota_scheme, smp_scheme
from repro.metrics.stats import mean_response_us, normalize
from repro.workloads.pmake import PmakeParams, create_pmake_files, pmake_job

#: Default pmake job for this experiment ("two parallel compiles each").
#: Compiles are CPU-dominated (as real compiles are once sources are
#: cached); the small working set ramps in quickly so CPU contention,
#: not paging, drives Figures 2 and 3.
DEFAULT_PMAKE = PmakeParams(
    n_tasks=8,
    parallelism=2,
    compile_ms=600.0,
    src_kb=32,
    obj_kb=32,
    ws_pages=96,
    metadata_writes=2,
    read_chunk_kb=32,
)

N_SPUS = 8
LIGHT_SPUS = range(4)  # indices 0..3 == the paper's SPUs 1-4
HEAVY_SPUS = range(4, 8)  # indices 4..7 == the paper's SPUs 5-8


@dataclass(frozen=True)
class Pmake8Run:
    """Raw output of one (scheme, placement) simulation."""

    scheme: str
    balanced: bool
    #: Mean job response (us) over the light SPUs (1-4).
    light_response_us: float
    #: Mean job response (us) over the heavy SPUs (5-8).
    heavy_response_us: float
    loans_granted: int
    loans_revoked: int


@dataclass(frozen=True)
class Pmake8Result:
    """Figures 2 and 3 for one scheme, normalised to SMP-balanced."""

    scheme: str
    #: Figure 2 bars: light SPUs, balanced and unbalanced (percent).
    fig2_balanced: float
    fig2_unbalanced: float
    #: Figure 3 bar: heavy SPUs, unbalanced (percent).
    fig3_unbalanced: float


def run_pmake8(
    scheme: SchemeConfig,
    balanced: bool,
    params: PmakeParams = DEFAULT_PMAKE,
    memory_mb: int = 44,
    seed: int = 0,
) -> Pmake8Run:
    """One simulation of the Pmake8 workload."""
    sim = build(SimulationSpec(
        ncpus=8,
        memory_mb=memory_mb,
        scheme=scheme,
        spus=[SpuSpec(f"user{i + 1}", swap_mount=i) for i in range(N_SPUS)],
        disks=N_SPUS,
        seed=seed,
    ))

    for i, spu in enumerate(sim.spus):
        njobs = 1 if balanced or i in LIGHT_SPUS else 2
        for j in range(njobs):
            files = create_pmake_files(
                sim.fs, mount=i, params=params, job_name=f"spu{i + 1}-job{j}"
            )
            sim.spawn(pmake_job(files, params), spu, name=f"pmake-spu{i + 1}-{j}")

    sim.run()
    results = sim.results()
    light = [r for r in results if r.spu_id in {sim.spus[i].spu_id for i in LIGHT_SPUS}]
    heavy = [r for r in results if r.spu_id in {sim.spus[i].spu_id for i in HEAVY_SPUS}]
    sched = sim.kernel.cpusched
    return Pmake8Run(
        scheme=scheme.name,
        balanced=balanced,
        light_response_us=mean_response_us(light),
        heavy_response_us=mean_response_us(heavy),
        loans_granted=sched.loans_granted,
        loans_revoked=sched.loans_revoked,
    )


def _render(results: Dict[str, Pmake8Result]) -> str:
    from repro.metrics.report import format_table

    rows: List[List[object]] = []
    for name, r in results.items():
        paper_b, paper_u = PAPER_FIG2[name]
        rows.append(
            [
                name,
                f"{r.fig2_balanced:.0f}",
                f"{r.fig2_unbalanced:.0f}",
                f"{paper_b:.0f}/{paper_u:.0f}",
                f"{r.fig3_unbalanced:.0f}",
                f"{PAPER_FIG3[name]:.0f}",
            ]
        )
    return format_table(
        ["scheme", "fig2 B", "fig2 U", "paper B/U", "fig3 U", "paper"],
        rows,
        title="Figures 2 & 3 — Pmake8 (percent of SMP-balanced)",
    )


@experiment(
    "pmake8",
    title="Figures 2 & 3 — Pmake8",
    render=_render,
    quick=True,
)
def run_figures_2_and_3(
    params: PmakeParams = DEFAULT_PMAKE, seed: int = 0
) -> Dict[str, Pmake8Result]:
    """All six simulations; results keyed by scheme name."""
    schemes = [smp_scheme(), quota_scheme(), piso_scheme()]
    runs: Dict[Tuple[str, bool], Pmake8Run] = {}
    for scheme in schemes:
        for balanced in (True, False):
            runs[(scheme.name, balanced)] = run_pmake8(
                scheme, balanced, params=params, seed=seed
            )
    baseline = runs[("SMP", True)].light_response_us
    out: Dict[str, Pmake8Result] = {}
    for scheme in schemes:
        out[scheme.name] = Pmake8Result(
            scheme=scheme.name,
            fig2_balanced=normalize(runs[(scheme.name, True)].light_response_us, baseline),
            fig2_unbalanced=normalize(runs[(scheme.name, False)].light_response_us, baseline),
            fig3_unbalanced=normalize(runs[(scheme.name, False)].heavy_response_us, baseline),
        )
    return out


#: What the paper measured, for shape comparison in benches/tests.
PAPER_FIG2 = {"SMP": (100.0, 156.0), "Quo": (100.0, 100.0), "PIso": (100.0, 100.0)}
PAPER_FIG3 = {"SMP": 156.0, "Quo": 187.0, "PIso": 146.0}
