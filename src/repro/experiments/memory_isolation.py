"""The memory-isolation experiment: Figure 7.

Two SPUs on a four-processor machine with deliberately small memory
(16 MB, Table 1, third row).  Jobs are pmakes with four parallel
compiles.  Memory fits one job per SPU but not two in one SPU:

* **balanced** — one job per SPU (2 jobs).
* **unbalanced** — SPU 1 one job, SPU 2 two jobs (3 jobs).

The bottom graph of Figure 7 (isolation) follows SPU 1's job: the paper
measured +45% under SMP (global page stealing plus CPU contention) but
only +13% under PIso.  The top graph (sharing) follows SPU 2's jobs in
the unbalanced placement: fixed quotas cost +145% over balanced (+100%
from CPU, +45% from paging in half the memory), while PIso lands close
to SMP by borrowing SPU 1's idle pages and CPUs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.api import SimulationSpec, SpuSpec, build, experiment
from repro.core.schemes import SchemeConfig, piso_scheme, quota_scheme, smp_scheme
from repro.metrics.stats import mean_response_us, normalize
from repro.workloads.pmake import PmakeParams, create_pmake_files, pmake_job

#: Pmake with "four parallel compiles each" and a working set sized so
#: one job fits an SPU's half of 16 MB and two jobs thrash.
DEFAULT_PMAKE = PmakeParams(
    n_tasks=8,
    parallelism=4,
    compile_ms=600.0,
    src_kb=32,
    obj_kb=32,
    ws_pages=420,
    touches_per_ms=0.05,
    fault_cluster_pages=16,
    metadata_writes=2,
    read_chunk_kb=32,
)


@dataclass(frozen=True)
class MemoryIsolationRun:
    """Raw responses (us) for one (scheme, placement) simulation."""

    scheme: str
    balanced: bool
    spu1_response_us: float
    spu2_response_us: float
    spu1_faults: int
    spu2_faults: int


@dataclass(frozen=True)
class MemoryIsolationResult:
    """Figure 7 bars for one scheme, normalised to SMP-balanced."""

    scheme: str
    #: Bottom graph (isolation): SPU 1's job, balanced / unbalanced.
    isolation_balanced: float
    isolation_unbalanced: float
    #: Top graph (sharing): SPU 2's jobs, balanced / unbalanced.
    sharing_balanced: float
    sharing_unbalanced: float


def run_memory_isolation(
    scheme: SchemeConfig,
    balanced: bool,
    params: PmakeParams = DEFAULT_PMAKE,
    memory_mb: int = 16,
    seed: int = 0,
) -> MemoryIsolationRun:
    """One simulation of the memory-isolation workload."""
    sim = build(SimulationSpec(
        ncpus=4,
        memory_mb=memory_mb,
        scheme=scheme,
        spus=[SpuSpec("user1", swap_mount=0), SpuSpec("user2", swap_mount=1)],
        disks=2,
        seed=seed,
    ))
    spu1, spu2 = sim.spus

    jobs = [(spu1, 0, 1), (spu2, 1, 1 if balanced else 2)]
    for spu, mount, njobs in jobs:
        for j in range(njobs):
            files = create_pmake_files(
                sim.fs, mount=mount, params=params,
                job_name=f"{spu.name}-job{j}",
            )
            sim.spawn(pmake_job(files, params), spu, name=f"pmake-{spu.name}-{j}")

    sim.run()
    results = sim.results()
    spu1_jobs = [r for r in results if r.spu_id == spu1.spu_id]
    spu2_jobs = [r for r in results if r.spu_id == spu2.spu_id]
    faults = {
        s.spu_id: sum(
            p.fault_count
            for p in sim.kernel.processes.values()
            if p.spu_id == s.spu_id
        )
        for s in (spu1, spu2)
    }
    return MemoryIsolationRun(
        scheme=scheme.name,
        balanced=balanced,
        spu1_response_us=mean_response_us(spu1_jobs),
        spu2_response_us=mean_response_us(spu2_jobs),
        spu1_faults=faults[spu1.spu_id],
        spu2_faults=faults[spu2.spu_id],
    )


def _render(results: Dict[str, MemoryIsolationResult]) -> str:
    from repro.metrics.report import format_table

    rows = []
    for name, r in results.items():
        rows.append(
            [
                name,
                f"{r.isolation_unbalanced:.0f}",
                f"{PAPER_FIG7['isolation'][name]:.0f}",
                f"{r.sharing_unbalanced:.0f}",
                f"{PAPER_FIG7['sharing'][name]:.0f}",
            ]
        )
    return format_table(
        ["scheme", "SPU1 U", "paper", "SPU2 U", "paper"],
        rows,
        title="Figure 7 — memory isolation (percent of SMP-balanced)",
    )


@experiment("fig7", title="Figure 7 — memory isolation", render=_render, quick=True)
def run_figure_7(
    params: PmakeParams = DEFAULT_PMAKE, seed: int = 0
) -> Dict[str, MemoryIsolationResult]:
    """All six simulations; results keyed by scheme name."""
    schemes = [smp_scheme(), quota_scheme(), piso_scheme()]
    runs: Dict[Tuple[str, bool], MemoryIsolationRun] = {}
    for scheme in schemes:
        for balanced in (True, False):
            runs[(scheme.name, balanced)] = run_memory_isolation(
                scheme, balanced, params=params, seed=seed
            )
    iso_base = runs[("SMP", True)].spu1_response_us
    share_base = runs[("SMP", True)].spu2_response_us
    return {
        s.name: MemoryIsolationResult(
            scheme=s.name,
            isolation_balanced=normalize(runs[(s.name, True)].spu1_response_us, iso_base),
            isolation_unbalanced=normalize(runs[(s.name, False)].spu1_response_us, iso_base),
            sharing_balanced=normalize(runs[(s.name, True)].spu2_response_us, share_base),
            sharing_unbalanced=normalize(runs[(s.name, False)].spu2_response_us, share_base),
        )
        for s in schemes
    }


#: Paper's Figure 7 (percent, SMP-balanced = 100).
PAPER_FIG7 = {
    "isolation": {"SMP": 145.0, "Quo": 100.0, "PIso": 113.0},
    "sharing": {"SMP": 150.0, "Quo": 245.0, "PIso": 160.0},
}
