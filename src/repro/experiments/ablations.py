"""Ablations of the design choices DESIGN.md calls out.

* :func:`run_lock_ablation` — Section 3.4: the inode-lock fix
  (mutual-exclusion vs readers/writer semaphore) on a four-processor
  lookup-heavy workload; the paper saw 20–30% better base response.
* :func:`run_bw_threshold_sweep` — Section 3.3/4.5: the BW difference
  threshold's isolation-vs-throughput trade-off (0 is round-robin-like,
  very large degenerates to position-only scheduling).
* :func:`run_decay_sweep` — the disk bandwidth counter's decay period
  (finer decay approximates an instantaneous rate better).
* :func:`run_reserve_sweep` — the memory Reserve Threshold that hides
  revocation cost when lending idle pages.
* :func:`run_fractional_partition` — the hybrid space/time CPU
  partition with non-integral entitlements (3 SPUs on 8 CPUs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.api import SimulationSpec, build, experiment
from repro.core.schemes import (
    DiskSchedPolicy,
    IsolationParams,
    piso_scheme,
    smp_scheme,
    stride_scheme,
)
from repro.kernel.locks import KernelLock
from repro.kernel.syscalls import Acquire, Behavior, Compute, Release, Sleep
from repro.metrics.stats import mean_response_us
from repro.sim.units import MSEC, SEC, usecs
from repro.experiments.disk_bandwidth import run_big_small_copy
from repro.experiments.memory_isolation import (
    DEFAULT_PMAKE as MEMORY_PMAKE,
    run_memory_isolation,
)


# --- Section 3.4: lock granularity -----------------------------------------


@dataclass(frozen=True)
class LockAblationResult:
    """Mean job response under each inode-lock implementation."""

    mutex_response_us: float
    rwlock_response_us: float
    mutex_contentions: int
    rwlock_contentions: int

    @property
    def improvement_percent(self) -> float:
        """How much the readers/writer fix helps (paper: 20-30%)."""
        return 100.0 * (1.0 - self.rwlock_response_us / self.mutex_response_us)


def _lookup_job(
    lock: KernelLock, lookups: int, crit_us: int, work_us: int, write_every: int
) -> Behavior:
    """A filesystem-metadata-heavy job: mostly shared inode lookups."""
    for i in range(lookups):
        exclusive = write_every > 0 and i % write_every == write_every - 1
        yield Acquire(lock, shared=not exclusive)
        yield Compute(crit_us)
        yield Release(lock)
        yield Compute(work_us)


def run_lock_ablation(
    nprocs: int = 8,
    lookups: int = 150,
    crit_us: int = 600,
    work_us: int = 1300,
    write_every: int = 25,
    seed: int = 0,
) -> LockAblationResult:
    """Compare the root-inode lock as a mutex vs readers/writer."""
    responses: Dict[bool, float] = {}
    contentions: Dict[bool, int] = {}
    for reader_writer in (False, True):
        sim = build(SimulationSpec(
            ncpus=4, memory_mb=32, scheme=piso_scheme(),
            spus=["u0", "u1"], seed=seed,
        ))
        inode_lock = KernelLock("root-inode", reader_writer=reader_writer)
        for i in range(nprocs):
            sim.spawn(
                _lookup_job(inode_lock, lookups, crit_us, work_us, write_every),
                i % len(sim.spus),
                name=f"lookup{i}",
            )
        sim.run()
        responses[reader_writer] = mean_response_us(sim.results())
        contentions[reader_writer] = inode_lock.contentions
    return LockAblationResult(
        mutex_response_us=responses[False],
        rwlock_response_us=responses[True],
        mutex_contentions=contentions[False],
        rwlock_contentions=contentions[True],
    )


# --- Section 3.4: priority inversion / inheritance -----------------------------


@dataclass(frozen=True)
class InversionResult:
    """Lock wait of a high-priority process behind a preempted holder."""

    no_inheritance_wait_ms: float
    inheritance_wait_ms: float

    @property
    def speedup(self) -> float:
        return self.no_inheritance_wait_ms / max(self.inheritance_wait_ms, 1e-9)


def run_priority_inversion_ablation(seed: int = 0) -> InversionResult:
    """The classic inversion, on one CPU.

    A low-priority process takes a lock; medium-priority hogs preempt
    it; a high-priority process blocks on the lock and — without
    inheritance — waits out the entire medium-priority run.  The paper
    (Section 3.4) prescribes the [SRL90] fix: "a process blocking on a
    semaphore should transfer its resources to the process holding the
    semaphore"; ``KernelLock(inheritance=True)`` implements it.
    """
    results = {}
    for inheritance in (False, True):
        sim = build(SimulationSpec(
            ncpus=1, memory_mb=16, scheme=piso_scheme(), spus=["u"], seed=seed,
        ))
        kernel = sim.kernel
        spu = sim.spu("u")
        lock = KernelLock("resource", inheritance=inheritance)

        def low() -> Behavior:
            yield Acquire(lock)
            yield Compute(usecs(100_000))  # long critical section
            yield Release(lock)

        def medium() -> Behavior:
            yield Sleep(usecs(2_000))
            yield Compute(usecs(500_000))

        def high() -> Behavior:
            yield Sleep(usecs(5_000))
            yield Acquire(lock)
            yield Compute(usecs(1_000))
            yield Release(lock)

        kernel.spawn(low(), spu, name="low", base_priority=30)
        for i in range(2):
            kernel.spawn(medium(), spu, name=f"medium{i}", base_priority=20)
        high_proc = kernel.spawn(high(), spu, name="high", base_priority=5)
        kernel.run()
        wait_ms = (high_proc.response_us - 5_000 - 1_000) / 1000.0
        results[inheritance] = wait_ms
    return InversionResult(
        no_inheritance_wait_ms=results[False],
        inheritance_wait_ms=results[True],
    )


# --- Section 4.5: BW difference threshold ------------------------------------


@dataclass(frozen=True)
class ThresholdPoint:
    """Table-4 outcome at one BW-difference-threshold setting."""

    threshold: float
    small_response_s: float
    big_response_s: float
    small_wait_ms: float
    latency_ms: float


def run_bw_threshold_sweep(
    thresholds: Tuple[float, ...] = (0.0, 64.0, 256.0, 1024.0, 16384.0, 10**9),
    seed: int = 0,
) -> List[ThresholdPoint]:
    """Sweep the fairness threshold on the big-and-small-copy workload.

    Small values give round-robin-like isolation (small copy protected,
    seeks paid); huge values converge to Pos (small copy locked out).
    """
    points = []
    for threshold in thresholds:
        params = IsolationParams(bw_difference_threshold=threshold)
        row = run_big_small_copy(DiskSchedPolicy.PISO, seed=seed, params=params)
        points.append(
            ThresholdPoint(
                threshold=threshold,
                small_response_s=row.response_a_s,
                big_response_s=row.response_b_s,
                small_wait_ms=row.wait_a_ms,
                latency_ms=row.latency_ms,
            )
        )
    return points


def run_decay_sweep(
    periods_ms: Tuple[int, ...] = (50, 500, 5000), seed: int = 0
) -> List[ThresholdPoint]:
    """Sweep the bandwidth counter's decay period (default 500 ms)."""
    points = []
    for period in periods_ms:
        params = IsolationParams(disk_decay_period=period * MSEC)
        row = run_big_small_copy(DiskSchedPolicy.PISO, seed=seed, params=params)
        points.append(
            ThresholdPoint(
                threshold=float(period),
                small_response_s=row.response_a_s,
                big_response_s=row.response_b_s,
                small_wait_ms=row.wait_a_ms,
                latency_ms=row.latency_ms,
            )
        )
    return points


# --- Section 3.2: the memory Reserve Threshold ---------------------------------


@dataclass(frozen=True)
class ReservePoint:
    """Memory-isolation outcome at one Reserve Threshold setting."""

    reserve_fraction: float
    spu1_unbalanced_s: float
    spu2_unbalanced_s: float


def run_reserve_sweep(
    fractions: Tuple[float, ...] = (0.0, 0.08, 0.25), seed: int = 0
) -> List[ReservePoint]:
    """Sweep the free-page reserve used when lending idle memory.

    Zero lends everything (cheap loans, expensive revocation for the
    lender); large values barely lend at all (closer to fixed quotas).
    """
    points = []
    for fraction in fractions:
        params = IsolationParams(reserve_threshold=fraction)
        scheme = piso_scheme(params)
        run = run_memory_isolation(
            scheme, balanced=False, params=MEMORY_PMAKE, seed=seed
        )
        points.append(
            ReservePoint(
                reserve_fraction=fraction,
                spu1_unbalanced_s=run.spu1_response_us / 1e6,
                spu2_unbalanced_s=run.spu2_response_us / 1e6,
            )
        )
    return points


# --- Section 3.1: tick vs IPI loan revocation ---------------------------------


@dataclass(frozen=True)
class RevocationResult:
    """Interactive wake-up latency under each revocation mode."""

    tick_latency_ms: float
    ipi_latency_ms: float

    @property
    def speedup(self) -> float:
        return self.tick_latency_ms / max(self.ipi_latency_ms, 1e-9)


def _interactive_latency(params: IsolationParams, seed: int) -> float:
    """Mean extra latency per interactive burst while a hog borrows.

    One interactive process shares a two-CPU machine with a CPU hog in
    the other SPU; whenever the interactive process sleeps, the hog
    borrows its CPU, so every wake-up needs a revocation.
    """
    from repro.workloads.interactive import (
        InteractiveParams,
        cpu_hog,
        interactive_excess_latency_us,
        interactive_user,
    )

    spec = InteractiveParams(bursts=100, think_ms=20.0, burst_ms=1.0)
    sim = build(SimulationSpec(
        ncpus=2, memory_mb=16, scheme=piso_scheme(params),
        spus=["interactive", "hog"], seed=seed,
    ))
    kernel = sim.kernel
    proc = sim.spawn(interactive_user(spec), "interactive", name="interactive")
    for i in range(2):
        sim.spawn(cpu_hog(30_000.0), "hog", name=f"hog{i}")
    kernel.run(until=3 * spec.ideal_us)
    if proc.finished < 0:
        # Interactive never finished inside the window: report the
        # overrun so the comparison still works.
        return (kernel.engine.now - spec.ideal_us) / spec.bursts / 1000.0
    return interactive_excess_latency_us(proc, spec) / 1000.0


def run_revocation_ablation(seed: int = 0) -> RevocationResult:
    """Tick-mode (paper) vs IPI-mode revocation latency."""
    tick = _interactive_latency(IsolationParams(revocation_mode="tick"), seed)
    ipi = _interactive_latency(IsolationParams(revocation_mode="ipi"), seed)
    return RevocationResult(tick_latency_ms=tick, ipi_latency_ms=ipi)


# --- Section 3.1: CPU migration (cache pollution) cost ---------------------------


@dataclass(frozen=True)
class MigrationPoint:
    """Throughput at one cache-affinity cost setting."""

    migration_cost_us: int
    scheme: str
    mean_response_s: float


def run_migration_sweep(
    costs_us: Tuple[int, ...] = (0, 500, 2000),
    seed: int = 0,
) -> List[MigrationPoint]:
    """The cost of CPU reallocation churn ("cache pollution").

    An over-subscribed SMP mix bounces processes between CPUs at every
    slice (no affinity in the stock global queue); a positive migration
    cost burns warm-up time on each bounce.  The partitioned PIso run
    is the control: its processes stay on their home CPUs, so the same
    cost setting barely moves it — space partitioning is itself an
    affinity mechanism.
    """
    points: List[MigrationPoint] = []

    def job() -> Behavior:
        yield Compute(usecs(400_000))

    for cost in costs_us:
        for scheme_factory in (smp_scheme, piso_scheme, stride_scheme):
            params = IsolationParams(migration_cost=cost)
            scheme = scheme_factory(params)  # simlint: dynamic=factory-table
            sim = build(SimulationSpec(
                ncpus=2, memory_mb=16, scheme=scheme,
                spus=["u0", "u1"], seed=seed,
            ))
            # An odd process count: round-robin over two CPUs then
            # lands each process on alternating CPUs, so affinity is
            # broken at nearly every slice on the global queue.
            procs = [
                sim.spawn(job(), i % 2, name=f"j{i}") for i in range(5)
            ]
            sim.run()
            mean = sum(p.response_us for p in procs) / len(procs) / 1e6
            points.append(
                MigrationPoint(
                    migration_cost_us=cost,
                    scheme=scheme.name,
                    mean_response_s=mean,
                )
            )
    return points


@dataclass(frozen=True)
class HolddownResult:
    """Loan churn with and without the revocation hold-down."""

    loans_without: int
    loans_with: int


def run_holddown_ablation(holddown_ms: float = 50.0, seed: int = 0) -> HolddownResult:
    """How much a loan hold-down damps reallocation churn.

    The interactive+hog scenario revokes a loan on every interactive
    wake-up; with a hold-down the freed CPU is not instantly re-lent,
    collapsing the grant/revoke ping-pong the paper warns about.
    """
    loans = {}
    for holddown in (0.0, holddown_ms):
        params = IsolationParams(loan_holddown=usecs(holddown * 1000))
        sim = build(SimulationSpec(
            ncpus=2, memory_mb=16, scheme=piso_scheme(params),
            spus=["interactive", "hog"], seed=seed,
        ))
        from repro.workloads.interactive import (
            InteractiveParams, cpu_hog, interactive_user,
        )

        spec = InteractiveParams(bursts=50, think_ms=20.0, burst_ms=1.0)
        sim.spawn(interactive_user(spec), "interactive")
        for i in range(2):
            sim.spawn(cpu_hog(5000.0), "hog")
        sim.run(until=usecs(2_000_000))
        loans[holddown] = sim.kernel.cpusched.loans_granted
    return HolddownResult(
        loans_without=loans[0.0], loans_with=loans[holddown_ms]
    )


# --- Related work: SPU partitioning vs stride scheduling -------------------------


@dataclass(frozen=True)
class SchedulerComparison:
    """The CPU-isolation workload under PIso and stride scheduling.

    Values are percent of the SMP case, as in Figure 5; the paper's
    related work argues both approaches deliver proportional shares —
    this measures how close they land on identical workloads.
    """

    piso: Dict[str, float]
    stride: Dict[str, float]


def run_scheduler_comparison(seed: int = 0) -> SchedulerComparison:
    """Figure-5 workload: the paper's partitioned PIso vs stride [Wal95]."""
    from repro.experiments.cpu_isolation import run_cpu_isolation

    base = run_cpu_isolation(smp_scheme(), seed=seed)
    rows = {}
    for scheme in (piso_scheme(), stride_scheme()):
        run = run_cpu_isolation(scheme, seed=seed)
        rows[scheme.name] = {
            "ocean": 100.0 * run.ocean_us / base.ocean_us,
            "flashlite": 100.0 * run.flashlite_us / base.flashlite_us,
            "vcs": 100.0 * run.vcs_us / base.vcs_us,
        }
    return SchedulerComparison(piso=rows["PIso"], stride=rows["Stride"])


# --- Section 3.1: fractional (time-partitioned) CPU shares ----------------------


@dataclass(frozen=True)
class FractionalPartitionResult:
    """CPU time received by 3 equal SPUs sharing 8 CPUs (2.667 each)."""

    cpu_seconds_by_spu: Dict[str, float]

    @property
    def max_imbalance_percent(self) -> float:
        values = list(self.cpu_seconds_by_spu.values())
        mean = sum(values) / len(values)
        return 100.0 * max(abs(v - mean) for v in values) / mean


def run_fractional_partition(
    nspus: int = 3, ncpus: int = 8, job_ms: float = 3000.0, seed: int = 0
) -> FractionalPartitionResult:
    """Three saturating SPUs on eight CPUs: each should get 8/3 CPUs.

    Exercises the hybrid partition's time-shared CPUs (each SPU gets
    two dedicated CPUs plus a rotating 2/3 share of the remainder).
    """

    def spinner(ms: float) -> Behavior:
        yield Compute(usecs(ms * 1000))

    sim = build(SimulationSpec(
        ncpus=ncpus, memory_mb=64, scheme=piso_scheme(),
        spus=[f"project{i}" for i in range(nspus)], seed=seed,
    ))
    for spu in sim.spus:
        # Enough processes to saturate any CPU the SPU is offered.
        for j in range(ncpus):
            sim.spawn(spinner(job_ms), spu, name=f"{spu.name}-spin{j}")
    # Run for a fixed window; jobs are sized to outlast it.
    sim.run(until=2 * SEC)
    by_spu = {
        spu.name: sim.kernel.cpu_account.total(spu.spu_id) / 1e6
        for spu in sim.spus
    }
    return FractionalPartitionResult(cpu_seconds_by_spu=by_spu)


# --- the registry aggregate: every ablation in one run ---------------------------


@dataclass(frozen=True)
class AblationsResult:
    """All the ablation sweeps for one seed, in one result."""

    lock: LockAblationResult
    bw_threshold: List[ThresholdPoint]
    decay: List[ThresholdPoint]
    reserve: List[ReservePoint]
    fractional: FractionalPartitionResult
    revocation: RevocationResult
    migration: List[MigrationPoint]
    holddown: HolddownResult
    inversion: InversionResult


def _render(result: AblationsResult) -> str:
    from repro.metrics.report import format_table

    parts = []
    lock = result.lock
    parts.append(
        f"Lock ablation (Section 3.4): mutex {lock.mutex_response_us / 1e6:.2f}s"
        f" -> readers/writer {lock.rwlock_response_us / 1e6:.2f}s"
        f" ({lock.improvement_percent:.0f}% better; paper: 20-30%)"
    )
    rows = [
        [f"{p.threshold:g}", f"{p.small_response_s:.2f}", f"{p.big_response_s:.2f}",
         f"{p.latency_ms:.2f}"]
        for p in result.bw_threshold
    ]
    parts.append(
        format_table(
            ["threshold", "small s", "big s", "lat ms"],
            rows,
            title="BW-difference threshold sweep (0 = round-robin-like,"
            " inf = position-only)",
        )
    )
    rows = [
        [f"{p.threshold:g}", f"{p.small_response_s:.2f}", f"{p.big_response_s:.2f}"]
        for p in result.decay
    ]
    parts.append(format_table(["decay ms", "small s", "big s"], rows,
                              title="Bandwidth-counter decay period sweep"))
    rows = [
        [f"{p.reserve_fraction:.2f}", f"{p.spu1_unbalanced_s:.2f}",
         f"{p.spu2_unbalanced_s:.2f}"]
        for p in result.reserve
    ]
    parts.append(format_table(["reserve", "spu1 s", "spu2 s"], rows,
                              title="Memory Reserve Threshold sweep"))
    frac = result.fractional
    parts.append(
        "Fractional CPU partition (3 SPUs on 8 CPUs): "
        + ", ".join(f"{k}={v:.2f}s" for k, v in frac.cpu_seconds_by_spu.items())
        + f" (max imbalance {frac.max_imbalance_percent:.1f}%)"
    )
    revocation = result.revocation
    parts.append(
        f"Revocation latency: tick {revocation.tick_latency_ms:.2f} ms/burst"
        f" vs IPI {revocation.ipi_latency_ms:.2f} ms/burst"
        f" ({revocation.speedup:.0f}x; paper suggests IPIs for interactive"
        " response-time guarantees)"
    )
    rows = [
        [f"{p.migration_cost_us}", p.scheme, f"{p.mean_response_s:.3f}"]
        for p in result.migration
    ]
    parts.append(format_table(
        ["migration cost us", "scheme", "mean response s"], rows,
        title="Cache-affinity (migration) cost sweep — partitioning is"
        " itself an affinity mechanism",
    ))
    holddown = result.holddown
    parts.append(
        f"Loan hold-down: {holddown.loans_without} loans granted without"
        f" vs {holddown.loans_with} with a 50 ms hold-down"
    )
    inversion = result.inversion
    parts.append(
        f"Priority inversion (Section 3.4 / [SRL90]): high-priority lock"
        f" wait {inversion.no_inheritance_wait_ms:.0f} ms ->"
        f" {inversion.inheritance_wait_ms:.0f} ms with inheritance"
        f" ({inversion.speedup:.1f}x)"
    )
    return "\n\n".join(parts)


@experiment("ablations", title="Ablations", render=_render, quick=True)
def run_ablations(seed: int = 0) -> AblationsResult:
    """Every ablation sweep, bundled for the registry and the runner."""
    return AblationsResult(
        lock=run_lock_ablation(seed=seed),
        bw_threshold=run_bw_threshold_sweep(seed=seed),
        decay=run_decay_sweep(seed=seed),
        reserve=run_reserve_sweep(seed=seed),
        fractional=run_fractional_partition(seed=seed),
        revocation=run_revocation_ablation(seed=seed),
        migration=run_migration_sweep(seed=seed),
        holddown=run_holddown_ablation(seed=seed),
        inversion=run_priority_inversion_ablation(seed=seed),
    )
