"""Tables 1 and 2 of the paper, encoded as data.

Table 1 lists the four workloads with their machine parameters and SPU
configurations; Table 2 lists the three resource-allocation schemes.
These are configuration tables, not results — they are encoded here so
the benches and docs can cite one authoritative description.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.core.schemes import SchemeConfig, piso_scheme, quota_scheme, smp_scheme


@dataclass(frozen=True)
class WorkloadSpec:
    """One row of Table 1."""

    name: str
    ncpus: int
    memory_mb: int
    disks: str
    applications: str
    spu_configuration: str


TABLE1: Dict[str, WorkloadSpec] = {
    "pmake8": WorkloadSpec(
        name="Pmake8",
        ncpus=8,
        memory_mb=44,
        disks="separate fast disks",
        applications="Multiple pmake jobs (two parallel compiles each)",
        spu_configuration=(
            "Balanced: 8 SPUs (1 job).  Unbalanced: 4 SPUs (1 job),"
            " 4 SPUs (2 jobs)"
        ),
    ),
    "cpu_isolation": WorkloadSpec(
        name="CPU isolation",
        ncpus=8,
        memory_mb=64,
        disks="separate fast disks",
        applications="Ocean (4-way), 3 Flashlite, 3 VCS",
        spu_configuration="2 SPUs: 1 SPU Ocean, 1 SPU Flashlite and VCS",
    ),
    "memory_isolation": WorkloadSpec(
        name="Memory isolation",
        ncpus=4,
        memory_mb=16,
        disks="separate fast disks",
        applications="Multiple pmake jobs (four parallel compiles each)",
        spu_configuration=(
            "Balanced: 2 SPUs (1 job).  Unbalanced: 1 SPU (1 job),"
            " 1 SPU (2 jobs)"
        ),
    ),
    "disk_bandwidth": WorkloadSpec(
        name="Disk bandwidth",
        ncpus=2,
        memory_mb=44,
        disks="shared HP97560",
        applications="Pmake and file copy",
        spu_configuration="1 SPU pmake, 1 SPU file copy",
    ),
}


@dataclass(frozen=True)
class SchemeSpec:
    """One row of Table 2."""

    name: str
    description: str
    factory: Callable[[], SchemeConfig]


TABLE2: Tuple[SchemeSpec, ...] = (
    SchemeSpec(
        name="Fixed Quota (Quo)",
        description="Fixed quota for each SPU with no sharing. (Good isolation)",
        factory=quota_scheme,
    ),
    SchemeSpec(
        name="Performance Isolation (PIso)",
        description="Performance isolation with policies for isolation and sharing.",
        factory=piso_scheme,
    ),
    SchemeSpec(
        name="SMP operating system (SMP)",
        description="Unconstrained sharing with no isolation. (Good sharing)",
        factory=smp_scheme,
    ),
)
