"""Network-bandwidth isolation — the paper's sketched extension.

Section 5: "Though we do not discuss performance isolation for network
bandwidth, the implementation would be similar to that of disk
bandwidth, without the complication of head position."  This experiment
builds the workload that motivates it: an RPC-style job (many small
messages with think time) sharing a 100 Mb/s link with a bulk sender
streaming a large transfer, under three link schedulers:

* **fifo** — stock behaviour; the bulk sender's packet trains queue
  ahead of every RPC (the network version of the core-dump lockout);
* **fair** — per-packet fair share by decayed bytes-per-share;
* **threshold** — FIFO until a sender exceeds the mean usage by the
  threshold (the BW-difference-threshold idea applied to the link).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.api import SimulationSpec, build, experiment
from repro.core.schemes import piso_scheme
from repro.kernel.machine import NicSpec
from repro.kernel.syscalls import Behavior
from repro.sim.units import KB, MB

POLICIES = ("fifo", "fair", "threshold")

#: RPC job: 200 requests of 2 KB with 1 ms think time.
RPC_COUNT = 200
RPC_BYTES = 2 * KB
RPC_THINK_MS = 1.0
#: Bulk job: 40 MB streamed in 64 KB messages.
BULK_TOTAL = 40 * MB
BULK_MESSAGE = 64 * KB


@dataclass(frozen=True)
class NetworkRow:
    """One row of the network-isolation comparison."""

    policy: str
    rpc_response_s: float
    bulk_response_s: float
    #: Mean per-packet queue wait for the RPC SPU, milliseconds.
    rpc_wait_ms: float
    bulk_wait_ms: float
    #: Link goodput over the run, Mb/s.
    goodput_mbps: float


def rpc_job(count: int = RPC_COUNT) -> Behavior:
    from repro.workloads.interactive import rpc_client

    return rpc_client(count=count, nbytes=RPC_BYTES, think_ms=RPC_THINK_MS)


def bulk_job(total: int = BULK_TOTAL) -> Behavior:
    from repro.workloads.interactive import bulk_sender

    return bulk_sender(total, message_bytes=BULK_MESSAGE)


def run_network_isolation(policy: str, seed: int = 0) -> NetworkRow:
    """One simulation: RPC SPU vs bulk SPU on a shared 100 Mb/s link."""
    sim = build(SimulationSpec(
        ncpus=2,
        memory_mb=32,
        scheme=piso_scheme(),
        spus=["rpc", "bulk"],
        disks=1,
        nics=[NicSpec(bandwidth_mbps=100.0, policy=policy)],
        seed=seed,
    ))

    rpc = sim.spawn(rpc_job(), "rpc", name="rpc")
    bulk = sim.spawn(bulk_job(), "bulk", name="bulk")
    sim.run()

    link = sim.kernel.links[0]
    elapsed_s = sim.engine.now / 1e6
    return NetworkRow(
        policy=policy,
        rpc_response_s=rpc.response_us / 1e6,
        bulk_response_s=bulk.response_us / 1e6,
        rpc_wait_ms=link.stats.mean_wait_ms(sim.spu("rpc").spu_id),
        bulk_wait_ms=link.stats.mean_wait_ms(sim.spu("bulk").spu_id),
        goodput_mbps=link.stats.total_bytes() * 8 / elapsed_s / 1e6,
    )


def _render(results: Dict[str, NetworkRow]) -> str:
    from repro.metrics.report import format_table

    rows = []
    for name, r in results.items():
        rows.append(
            [name, f"{r.rpc_response_s:.2f}", f"{r.bulk_response_s:.2f}",
             f"{r.rpc_wait_ms:.2f}", f"{r.goodput_mbps:.1f}"]
        )
    return format_table(
        ["policy", "rpc s", "bulk s", "rpc wait ms", "goodput Mb/s"],
        rows,
        title="Network-bandwidth isolation (the paper's Section-5 sketch:"
        " disk policy minus head position)",
    )


@experiment(
    "network", title="Network-bandwidth isolation", render=_render, quick=True
)
def run_network_table(seed: int = 0) -> Dict[str, NetworkRow]:
    """All three link policies."""
    return {p: run_network_isolation(p, seed) for p in POLICIES}
