"""Adversarial workloads that deliberately abuse kernel resource paths.

The paper's central claim is that performance isolation holds "even in
the presence of a misbehaving SPU".  PR 1 stressed the claim with
misbehaving *hardware*; this package supplies the misbehaving
*software*: a library of antagonists, each engineered to saturate one
kernel resource path (process table, physical memory, disk bandwidth,
buffer cache, kernel locks, the metadata write path).

Each antagonist is an ordinary process behaviour — the kernel gets no
side channel; whatever protection the victim enjoys must come from the
scheme's own isolation machinery plus the overload hardening
(:mod:`repro.kernel.overload`, :class:`repro.faults.OverloadGuard`).
"""

from repro.antagonists.library import ANTAGONIST_KINDS, launch

__all__ = ["ANTAGONIST_KINDS", "launch"]
