"""The antagonist library: one adversary per kernel resource path.

========================  =====================================================
kind                      attack
========================  =====================================================
``fork_bomb``             generational :class:`Spawn` tree far past the
                          per-SPU process limit; denied spawns (-1) are
                          absorbed and the survivors burn CPU
``memory_bomb``           working set several times the SPU's fair share,
                          touched continuously — thrashes the pager and,
                          under global replacement, steals victim pages
``disk_flooder``          parallel streaming read/write passes over files
                          much larger than the buffer cache share
``cache_polluter``        scattered reads across a large fragmented file,
                          evicting everyone's warm buffer-cache blocks
``lock_hogger``           takes a shared kernel lock exclusively and holds
                          it for long compute bursts, back to back
``metadata_storm``        synchronous one-sector metadata writes in a tight
                          loop (the paper's "many repeated writes of
                          meta-data to a single sector")
========================  =====================================================

:func:`launch` instantiates one antagonist inside an SPU.  All sizing
flows from the machine (page counts, cache share) and a caller-supplied
RNG, so runs are deterministic; ``scale`` multiplies process counts and
footprints for milder or nastier mixes.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, List, Optional

from repro.kernel.syscalls import (
    Acquire,
    Behavior,
    Compute,
    ReadFile,
    Release,
    SetWorkingSet,
    Sleep,
    Spawn,
    WaitChildren,
    WriteFile,
    WriteMetadata,
)
from repro.sim.units import KB, MB, MSEC, PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.spu import SPU
    from repro.fs.layout import File
    from repro.kernel.kernel import Kernel
    from repro.kernel.locks import KernelLock
    from repro.kernel.process import Process

#: Every antagonist kind :func:`launch` understands.
ANTAGONIST_KINDS = (
    "fork_bomb",
    "memory_bomb",
    "disk_flooder",
    "cache_polluter",
    "lock_hogger",
    "metadata_storm",
)


class AntagonistError(ValueError):
    """Raised for unknown kinds or unusable launch arguments."""


# --- behaviours --------------------------------------------------------------


def _fork_bomb(depth: int, fanout: int, work_us: int) -> Behavior:
    """A generational spawn tree; every node computes, leaves included.

    ``Spawn`` yields -1 when the kernel denies the fork (per-SPU process
    limit) — a real fork bomb keeps hammering regardless, so denials are
    simply absorbed and the node moves on.
    """

    def node(gen: int) -> Behavior:
        spawned = 0
        if gen < depth:
            for _ in range(fanout):
                pid = yield Spawn(node(gen + 1), name=f"bomb-g{gen + 1}")
                if pid != -1:
                    spawned += 1
        yield Compute(work_us)
        if spawned:
            yield WaitChildren()

    return node(0)


def _memory_bomb(pages: int, rounds: int, burst_us: int) -> Behavior:
    """Declare a huge working set and keep touching it.

    Every compute burst re-touches pages at a high rate; whenever the
    resident set is short of the declared one, that means page faults —
    and under global replacement, stolen victim pages.
    """

    def behavior() -> Behavior:
        yield SetWorkingSet(pages=pages, touches_per_ms=8.0)
        for _ in range(rounds):
            yield Compute(burst_us)
        yield SetWorkingSet(pages=0)

    return behavior()


def _stream(file: "File", passes: int, chunk: int) -> Behavior:
    """Sequentially read (even passes) or write (odd passes) a file."""

    def behavior() -> Behavior:
        for i in range(passes):
            offset = 0
            while offset < file.size_bytes:
                nbytes = min(chunk, file.size_bytes - offset)
                if i % 2:
                    yield WriteFile(file, offset, nbytes)
                else:
                    yield ReadFile(file, offset, nbytes)
                offset += nbytes

    return behavior()


def _polluter(file: "File", rng: random.Random, touches: int, chunk: int) -> Behavior:
    """Read scattered ranges of a big fragmented file.

    Offsets are drawn up front from the caller's RNG so the behaviour
    itself is a fixed schedule — determinism does not depend on when
    the generator happens to be resumed.
    """
    span = max(1, file.size_bytes - chunk)
    offsets = [rng.randrange(0, span) for _ in range(touches)]

    def behavior() -> Behavior:
        for offset in offsets:
            yield ReadFile(file, offset, chunk)

    return behavior()


def _lock_hogger(lock: "KernelLock", rounds: int, hold_us: int, gap_us: int) -> Behavior:
    """Exclusively hold a shared kernel lock for long bursts."""

    def behavior() -> Behavior:
        for _ in range(rounds):
            yield Acquire(lock)
            yield Compute(hold_us)
            yield Release(lock)
            if gap_us:
                yield Sleep(gap_us)

    return behavior()


def _metadata_storm(files: List["File"], writes: int) -> Behavior:
    """Synchronous metadata writes, round-robin over a few files."""

    def behavior() -> Behavior:
        for i in range(writes):
            yield WriteMetadata(files[i % len(files)])

    return behavior()


# --- the launcher ------------------------------------------------------------


def _scaled(n: int, scale: float) -> int:
    return max(1, round(n * scale))


def _fresh_name(kernel: "Kernel", kind: str) -> str:
    """A per-kernel unique file name (deterministic: a plain counter)."""
    seq = getattr(kernel, "_antagonist_seq", 0)
    kernel._antagonist_seq = seq + 1  # type: ignore[attr-defined]
    return f"antagonist/{kind}.{seq}"


def launch(
    kernel: "Kernel",
    spu: "SPU",
    kind: str,
    rng: random.Random,
    mount: int = 0,
    shared_lock: Optional["KernelLock"] = None,
    scale: float = 1.0,
) -> List["Process"]:
    """Start one antagonist of ``kind`` inside ``spu``; returns its roots.

    ``shared_lock`` is required by ``lock_hogger`` (the whole point is
    contending on a lock the victim also takes).  ``scale`` multiplies
    process counts and footprints.
    """
    if kind not in ANTAGONIST_KINDS:
        raise AntagonistError(
            f"unknown antagonist {kind!r}; expected one of {ANTAGONIST_KINDS}"
        )
    if scale <= 0:
        raise AntagonistError(f"scale must be positive, got {scale}")

    procs: List["Process"] = []

    def start(behavior: Behavior, label: str) -> None:
        procs.append(kernel.spawn(behavior, spu, name=label))

    if kind == "fork_bomb":
        # depth 4 / fanout 3 is 121 processes per root — two roots
        # overrun the default 128-process SPU limit severalfold.
        for i in range(_scaled(2, scale)):
            start(_fork_bomb(depth=4, fanout=3, work_us=120 * MSEC), f"fork_bomb.{i}")

    elif kind == "memory_bomb":
        pages = _scaled(int(kernel.memory.total_pages * 0.6), scale)
        for i in range(2):
            start(_memory_bomb(pages=pages, rounds=400, burst_us=5 * MSEC),
                  f"memory_bomb.{i}")

    elif kind == "disk_flooder":
        for i in range(_scaled(4, scale)):
            file = kernel.fs.create(
                mount, _fresh_name(kernel, kind), 8 * MB
            )
            start(_stream(file, passes=6, chunk=256 * KB), f"disk_flooder.{i}")

    elif kind == "cache_polluter":
        file = kernel.fs.create(
            mount, _fresh_name(kernel, kind),
            min(16 * MB, kernel.memory.total_pages * PAGE_SIZE),
            fragmented=True,
        )
        for i in range(_scaled(2, scale)):
            start(_polluter(file, rng, touches=_scaled(400, scale), chunk=64 * KB),
                  f"cache_polluter.{i}")

    elif kind == "lock_hogger":
        if shared_lock is None:
            raise AntagonistError("lock_hogger needs the shared_lock it will hog")
        for i in range(_scaled(2, scale)):
            start(_lock_hogger(shared_lock, rounds=_scaled(400, scale),
                               hold_us=3 * MSEC, gap_us=0),
                  f"lock_hogger.{i}")

    elif kind == "metadata_storm":
        files = [
            kernel.fs.create(mount, _fresh_name(kernel, kind), 64 * KB,
                             fragmented=True)
            for _ in range(4)
        ]
        for i in range(_scaled(2, scale)):
            start(_metadata_storm(files, writes=_scaled(300, scale)),
                  f"metadata_storm.{i}")

    return procs
