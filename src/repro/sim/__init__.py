"""Discrete-event simulation substrate.

The engine (:class:`~repro.sim.engine.Engine`) provides the simulated
clock, event queue, and deterministic randomness that every other
subsystem builds on.  Nothing in this package knows about CPUs, memory,
or disks.
"""

from repro.sim.engine import Engine, EventHandle, PeriodicTimer, SimulationError
from repro.sim.trace import NullTracer, TraceRecord, Tracer
from repro.sim import units

__all__ = [
    "Engine",
    "EventHandle",
    "PeriodicTimer",
    "SimulationError",
    "Tracer",
    "NullTracer",
    "TraceRecord",
    "units",
]
