"""Deterministic discrete-event simulation engine.

The engine owns simulated time (integer microseconds) and a binary-heap
event queue.  Components schedule callbacks with :meth:`Engine.at` /
:meth:`Engine.after`; both return an :class:`EventHandle` that can be
cancelled, which is how pre-emptions and timer resets are expressed.

Events scheduled for the same instant fire in scheduling order (a
monotonically increasing sequence number breaks ties), so a run is a
pure function of the initial configuration and the RNG seed.

**Daemon events.**  Periodic infrastructure (clock ticks, writeback,
memory rebalancing) reschedules itself forever, which would keep
:meth:`Engine.run` from ever returning.  Such events are marked
``daemon=True``: like daemon threads, they do not keep the simulation
alive.  ``run()`` with no deadline returns once only daemon events
remain.

The heap holds ``(time, seq, handle)`` tuples rather than handles:
tuple comparison runs in C and the unique sequence number guarantees
the handle itself is never compared, which keeps the dispatch loop —
the hottest code in the whole simulator — free of Python-level
``__lt__`` calls.
"""

from __future__ import annotations

import random
from heapq import heappop, heappush
from typing import Any, Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised for illegal uses of the engine (e.g. scheduling in the past)."""


class EventHandle:
    """A scheduled callback; cancellable until it fires."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "fired", "daemon", "_engine")

    def __init__(
        self,
        time: int,
        seq: int,
        fn: Callable[..., None],
        args: tuple,
        daemon: bool,
        engine: "Engine",
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.daemon = daemon
        self.cancelled = False
        self.fired = False
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent.

        Cancelling after the event has already fired is a no-op; the
        live-event count was settled when the event ran.
        """
        if not self.cancelled and not self.fired:
            self.cancelled = True
            if not self.daemon:
                self._engine._live -= 1

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<EventHandle t={self.time} {name} {state}>"


class Engine:
    """The simulation clock and event loop.

    Parameters
    ----------
    seed:
        Seed for the engine-owned :class:`random.Random`.  Every source
        of randomness in a simulation must draw from :attr:`rng` (or a
        stream forked from it via :meth:`fork_rng`) so runs replay
        exactly.
    """

    __slots__ = ("_now", "_seq", "_queue", "_live", "rng", "_seed", "_running", "_san")

    def __init__(self, seed: int = 0):
        self._now = 0
        self._seq = 0
        self._queue: List[Tuple[int, int, EventHandle]] = []
        #: Count of pending non-daemon events; run() without a deadline
        #: returns when this reaches zero.
        self._live = 0
        self.rng = random.Random(seed)
        self._seed = seed
        self._running = False
        #: Post-event hook (the SIMSAN sanitizer).  None keeps the
        #: dispatch loop on its branch-free fast path.
        self._san: Optional[Callable[[], None]] = None

    # --- time ------------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulated time in microseconds."""
        return self._now

    @property
    def seed(self) -> int:
        """The seed this engine was constructed with."""
        return self._seed

    def fork_rng(self, name: str) -> random.Random:
        """Create an independent, deterministic RNG stream.

        The stream depends only on the engine seed and ``name``, so
        adding a new consumer of randomness does not perturb existing
        streams.
        """
        return random.Random(f"{self._seed}/{name}")

    # --- scheduling --------------------------------------------------------

    def at(
        self, time: int, fn: Callable[..., None], *args: Any, daemon: bool = False
    ) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before now ({self._now})"
            )
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(time, seq, fn, args, daemon, self)
        if not daemon:
            self._live += 1
        heappush(self._queue, (time, seq, handle))
        return handle

    def after(
        self, delay: int, fn: Callable[..., None], *args: Any, daemon: bool = False
    ) -> EventHandle:
        """Schedule ``fn(*args)`` after ``delay`` microseconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        # Open-coded at(): delay >= 0 means the time can never be in
        # the past, and this is the most common way events are made.
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(time, seq, fn, args, daemon, self)
        if not daemon:
            self._live += 1
        heappush(self._queue, (time, seq, handle))
        return handle

    def every(
        self,
        period: int,
        fn: Callable[..., None],
        *args: Any,
        start: Optional[int] = None,
        daemon: bool = True,
    ) -> "PeriodicTimer":
        """Run ``fn(*args)`` every ``period`` microseconds until stopped.

        Periodic timers default to daemon events: they do not keep
        :meth:`run` alive once all real work has drained.
        """
        if period <= 0:
            raise SimulationError(f"non-positive period {period}")
        timer = PeriodicTimer(self, period, fn, args, daemon)
        timer.start(self._now + period if start is None else start)
        return timer

    # --- execution ---------------------------------------------------------

    def set_sanitizer(self, hook: Optional[Callable[[], None]]) -> None:
        """Install (or remove, with None) a hook run after every event.

        Used by :mod:`repro.sanitizer` to check invariants at event
        granularity.  With no hook installed, the dispatch loop stays on
        its branch-free fast path.
        """
        self._san = hook

    def step(self) -> bool:
        """Run the next pending event.  Returns False if the queue is empty."""
        while self._queue:
            time, _seq, handle = heappop(self._queue)
            if handle.cancelled:
                continue
            self._now = time
            handle.fired = True
            if not handle.daemon:
                self._live -= 1
            handle.fn(*handle.args)
            if self._san is not None:
                self._san()
            return True
        return False

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        With no ``until``, runs until no non-daemon events remain (or
        ``max_events`` fire).  With ``until``, runs all events —
        daemons included — up to and including that time, then sets the
        clock to ``until``.  Returns the number of events executed.
        """
        if self._running:
            raise SimulationError("engine is not re-entrant")
        self._running = True
        executed = 0
        # The queue list is never rebound, so it (and heappop) can live
        # in locals; _live and _now cannot — callbacks mutate them
        # through self.
        queue = self._queue
        try:
            if until is None and max_events is None and self._san is None:
                # The common case, kept free of per-event branch tests.
                while queue and self._live:
                    time, _seq, handle = heappop(queue)
                    if handle.cancelled:
                        continue
                    self._now = time
                    handle.fired = True
                    if not handle.daemon:
                        self._live -= 1
                    handle.fn(*handle.args)
                    executed += 1
                return executed
            while queue:
                if max_events is not None and executed >= max_events:
                    break
                if until is None and self._live == 0:
                    break
                time, _seq, handle = queue[0]
                if handle.cancelled:
                    heappop(queue)
                    continue
                if until is not None and time > until:
                    break
                heappop(queue)
                self._now = time
                handle.fired = True
                if not handle.daemon:
                    self._live -= 1
                handle.fn(*handle.args)
                if self._san is not None:
                    self._san()
                executed += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
        return executed

    def pending(self) -> int:
        """Number of scheduled, uncancelled events."""
        return sum(1 for _, _, h in self._queue if not h.cancelled)

    def live_events(self) -> int:
        """Number of pending non-daemon events."""
        return self._live


class PeriodicTimer:
    """A repeating event; reschedules itself after each firing."""

    __slots__ = ("_engine", "period", "daemon", "_fn", "_args", "_handle", "_stopped")

    def __init__(
        self,
        engine: Engine,
        period: int,
        fn: Callable[..., None],
        args: tuple,
        daemon: bool = True,
    ):
        self._engine = engine
        self.period = period
        self.daemon = daemon
        self._fn = fn
        self._args = args
        self._handle: Optional[EventHandle] = None
        self._stopped = False

    def start(self, first_time: int) -> None:
        if self._stopped:
            raise SimulationError("timer already stopped")
        self._handle = self._engine.at(first_time, self._fire, daemon=self.daemon)

    def _fire(self) -> None:
        if self._stopped:
            return
        self._fn(*self._args)
        if not self._stopped:
            self._handle = self._engine.after(self.period, self._fire, daemon=self.daemon)

    def stop(self) -> None:
        """Stop the timer.  Idempotent."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
