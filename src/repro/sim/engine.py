"""Deterministic discrete-event simulation engine.

The engine owns simulated time (integer microseconds) and a two-level
**calendar queue**: a binary heap holding the near-term *dispatch
window* plus an array of far-future buckets.  Events land in the
window directly; events beyond the window horizon are appended to a
bucket (O(1)) and only heapified when the window advances to their
bucket.  For the workloads the simulator runs — a dense near-term
event population fed by periodic timers, plus long-tail timeouts and
fault injections — this keeps the per-event cost of the far tail off
the hot dispatch path while degenerating to the plain heap when every
event is near-term.

Events scheduled for the same instant fire in scheduling order (a
monotonically increasing sequence number breaks ties), so a run is a
pure function of the initial configuration and the RNG seed.

**Packed events.**  The queues hold ``(time, seq, kind, target, args)``
tuples.  Tuple comparison runs in C and the unique sequence number
guarantees comparison never reaches the non-comparable tail.  Four
kinds exist: plain calls (:meth:`Engine.call_at` /
:meth:`Engine.call_after` — fire-and-forget, no handle allocated),
their daemon variants, cancellable :class:`EventHandle` events
(:meth:`Engine.at` / :meth:`Engine.after`), and
:class:`PeriodicTimer` occurrences, which reschedule without
allocating a handle per period.

**Daemon events.**  Periodic infrastructure (clock ticks, writeback,
memory rebalancing) reschedules itself forever, which would keep
:meth:`Engine.run` from ever returning.  Such events are marked
``daemon=True``: like daemon threads, they do not keep the simulation
alive.  ``run()`` with no deadline returns once only daemon events
remain.

**Idle fast-forward.**  A periodic timer created with a ``skip_fn``
may have idle stretches elided: when the registered idle probe reports
no runnable work and the next occurrence lands strictly before every
other pending event, the engine calls ``skip_fn(k)`` once in place of
``k`` consecutive firings and jumps the occurrence past the next real
event.  ``skip_fn(k)`` must reproduce exactly the state changes ``k``
idle firings would have made; under that contract the journal, the
event count returned by :meth:`run`, and all same-instant orderings
are bit-identical with and without fast-forward (elision never crosses
or touches a pending event's timestamp, so no event's relative order
can change).  Fast-forward disables itself whenever observability
hooks need every event: under a SIMSAN sanitizer or a ``max_events``
budget the engine fires each occurrence individually.
"""

from __future__ import annotations

import random
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Far-future bucket width is ``1 << _BUCKET_SHIFT`` microseconds
#: (~65 ms): wide enough that steady-state traffic stays in the
#: dispatch window, narrow enough that advancing heapifies small
#: batches.
_BUCKET_SHIFT = 16

#: Module-wide defaults for :class:`Engine`'s queue flags.  The
#: differential test suite flips these to run whole experiments on the
#: legacy single-heap queue or without fast-forward and prove the
#: journals identical; production code leaves them alone.
DEFAULT_CALENDAR = True
DEFAULT_FAST_FORWARD = True

# Event kinds, inlined as constants in the dispatch loops.
_K_CALL = 0      # fire-and-forget call, non-daemon
_K_CALL_D = 1    # fire-and-forget call, daemon
_K_HANDLE = 2    # cancellable EventHandle
_K_TIMER = 3     # PeriodicTimer occurrence


class SimulationError(RuntimeError):
    """Raised for illegal uses of the engine (e.g. scheduling in the past)."""


class EventHandle:
    """A scheduled callback; cancellable until it fires."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "fired", "daemon", "_engine")

    def __init__(
        self,
        time: int,
        seq: int,
        fn: Callable[..., None],
        args: tuple,
        daemon: bool,
        engine: "Engine",
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.daemon = daemon
        self.cancelled = False
        self.fired = False
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent.

        Cancelling after the event has already fired is a no-op; the
        live-event count was settled when the event ran.
        """
        if not self.cancelled and not self.fired:
            self.cancelled = True
            if not self.daemon:
                self._engine._live -= 1

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<EventHandle t={self.time} {name} {state}>"


class Engine:
    """The simulation clock and event loop.

    Parameters
    ----------
    seed:
        Seed for the engine-owned :class:`random.Random`.  Every source
        of randomness in a simulation must draw from :attr:`rng` (or a
        stream forked from it via :meth:`fork_rng`) so runs replay
        exactly.
    calendar:
        With False, the far buckets are disabled and every event lives
        in one heap — the pre-calendar behaviour, kept selectable so
        differential tests can prove the two produce identical runs.
        None (the default) follows :data:`DEFAULT_CALENDAR`.
    fast_forward:
        With False, idle stretches of skip-capable periodic timers are
        never elided; every occurrence fires individually.  None (the
        default) follows :data:`DEFAULT_FAST_FORWARD`.
    """

    __slots__ = (
        "_now", "_seq", "_near", "_far", "_far_ids", "_horizon",
        "_live", "rng", "_seed", "_running", "_san", "_idle", "_ff",
    )

    def __init__(
        self,
        seed: int = 0,
        calendar: Optional[bool] = None,
        fast_forward: Optional[bool] = None,
    ):
        if calendar is None:
            calendar = DEFAULT_CALENDAR
        if fast_forward is None:
            fast_forward = DEFAULT_FAST_FORWARD
        self._now = 0
        self._seq = 0
        #: The dispatch window: a heap of entries with time < _horizon.
        self._near: List[Tuple[int, int, int, Any, Any]] = []
        #: Far-future buckets keyed by time >> _BUCKET_SHIFT, each an
        #: unsorted append-only list, plus a heap of occupied bucket ids.
        self._far: Dict[int, List[Tuple[int, int, int, Any, Any]]] = {}
        self._far_ids: List[int] = []
        self._horizon: Any = (1 << _BUCKET_SHIFT) if calendar else float("inf")
        #: Count of pending non-daemon events; run() without a deadline
        #: returns when this reaches zero.
        self._live = 0
        self.rng = random.Random(seed)
        self._seed = seed
        self._running = False
        #: Post-event hook (the SIMSAN sanitizer).  None keeps the
        #: dispatch loop on its branch-free fast path.
        self._san: Optional[Callable[[], None]] = None
        #: Idle probe: True means no component has runnable work, so
        #: skip-capable timers may fast-forward.  None disables.
        self._idle: Optional[Callable[[], bool]] = None
        self._ff = fast_forward

    # --- time ------------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulated time in microseconds."""
        return self._now

    @property
    def seed(self) -> int:
        """The seed this engine was constructed with."""
        return self._seed

    def fork_rng(self, name: str) -> random.Random:
        """Create an independent, deterministic RNG stream.

        The stream depends only on the engine seed and ``name``, so
        adding a new consumer of randomness does not perturb existing
        streams.
        """
        return random.Random(f"{self._seed}/{name}")

    # --- queue internals ---------------------------------------------------

    def _push(self, entry: Tuple[int, int, int, Any, Any]) -> None:
        """File an entry in the window or a far bucket by its time."""
        if entry[0] < self._horizon:
            # entry is a (time, seq, ...) tuple; seq is unique, so
            # comparison never reaches the payload.
            heappush(self._near, entry)  # simlint: disable=SL202
        else:
            bid = entry[0] >> _BUCKET_SHIFT
            bucket = self._far.get(bid)
            if bucket is None:
                self._far[bid] = [entry]
                # Bucket ids are plain ints (totally ordered).
                heappush(self._far_ids, bid)  # simlint: disable=SL202
            else:
                bucket.append(entry)

    def _advance_window(self) -> None:
        """Move the dispatch window to the next occupied far bucket.

        Only called with the window empty, so every near entry stays
        below every far entry and ordering is preserved.  The near list
        object is never rebound — dispatch loops hold a local alias.
        """
        bid = heappop(self._far_ids)
        near = self._near
        near.extend(self._far.pop(bid))
        heapify(near)
        self._horizon = (bid + 1) << _BUCKET_SHIFT

    def _peek_time(self) -> Optional[int]:
        """Time of the next pending entry (dead ones included), or None."""
        near = self._near
        while not near:
            if not self._far_ids:
                return None
            self._advance_window()
        return near[0][0]

    # --- scheduling --------------------------------------------------------

    def at(
        self, time: int, fn: Callable[..., None], *args: Any, daemon: bool = False
    ) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before now ({self._now})"
            )
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(time, seq, fn, args, daemon, self)
        if not daemon:
            self._live += 1
        self._push((time, seq, _K_HANDLE, handle, None))
        return handle

    def after(
        self, delay: int, fn: Callable[..., None], *args: Any, daemon: bool = False
    ) -> EventHandle:
        """Schedule ``fn(*args)`` after ``delay`` microseconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        # Open-coded at(): delay >= 0 means the time can never be in
        # the past, and this is the most common way events are made.
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(time, seq, fn, args, daemon, self)
        if not daemon:
            self._live += 1
        self._push((time, seq, _K_HANDLE, handle, None))
        return handle

    def call_at(
        self, time: int, fn: Callable[..., None], *args: Any, daemon: bool = False
    ) -> None:
        """Schedule ``fn(*args)`` at ``time`` with no cancellation handle.

        The packed fast path for the many schedule sites that never
        cancel: no :class:`EventHandle` is allocated.  Consumes one
        sequence number, exactly like :meth:`at`.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before now ({self._now})"
            )
        seq = self._seq
        self._seq = seq + 1
        if daemon:
            self._push((time, seq, _K_CALL_D, fn, args))
        else:
            self._live += 1
            self._push((time, seq, _K_CALL, fn, args))

    def call_after(
        self, delay: int, fn: Callable[..., None], *args: Any, daemon: bool = False
    ) -> None:
        """Schedule ``fn(*args)`` after ``delay`` with no handle."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        if daemon:
            self._push((time, seq, _K_CALL_D, fn, args))
        else:
            self._live += 1
            self._push((time, seq, _K_CALL, fn, args))

    def every(
        self,
        period: int,
        fn: Callable[..., None],
        *args: Any,
        start: Optional[int] = None,
        daemon: bool = True,
        skip_fn: Optional[Callable[[int], None]] = None,
    ) -> "PeriodicTimer":
        """Run ``fn(*args)`` every ``period`` microseconds until stopped.

        Periodic timers default to daemon events: they do not keep
        :meth:`run` alive once all real work has drained.

        ``skip_fn(k)`` opts the timer into idle fast-forward; it must
        replay the exact state changes ``k`` consecutive idle firings
        of ``fn`` would make (see the module docstring for the
        determinism contract).
        """
        if period <= 0:
            raise SimulationError(f"non-positive period {period}")
        timer = PeriodicTimer(self, period, fn, args, daemon, skip_fn)
        timer.start(self._now + period if start is None else start)
        return timer

    # --- execution ---------------------------------------------------------

    def set_sanitizer(self, hook: Optional[Callable[[], None]]) -> None:
        """Install (or remove, with None) a hook run after every event.

        Used by :mod:`repro.sanitizer` to check invariants at event
        granularity.  With no hook installed, the dispatch loop stays
        on its branch-free fast path.  A sanitizer also suspends idle
        fast-forward so the hook observes every timer occurrence.
        """
        self._san = hook

    def set_idle_probe(self, probe: Optional[Callable[[], bool]]) -> None:
        """Install the probe that authorises idle fast-forward.

        ``probe()`` must return True only when no component has
        runnable work — i.e. every pending state change is already an
        event in this queue.  Without a probe, skip-capable timers
        fire every occurrence.
        """
        self._idle = probe

    def step(self) -> bool:
        """Run the next pending event.  Returns False if the queue is empty."""
        near = self._near
        while True:
            if not near:
                if not self._far_ids:
                    return False
                self._advance_window()
                continue
            time, _seq, kind, target, args = heappop(near)
            if kind == _K_HANDLE:
                if target.cancelled:
                    continue
                self._now = time
                target.fired = True
                if not target.daemon:
                    self._live -= 1
                target.fn(*target.args)  # simlint: dynamic=engine-dispatch
            elif kind == _K_TIMER:
                if target._stopped:
                    continue
                self._now = time
                target._dispatch(time)
            else:
                self._now = time
                if kind == _K_CALL:
                    self._live -= 1
                target(*args)  # simlint: dynamic=engine-dispatch
            if self._san is not None:
                self._san()  # simlint: dynamic=engine-dispatch
            return True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        With no ``until``, runs until no non-daemon events remain (or
        ``max_events`` fire).  With ``until``, runs all events —
        daemons included — up to and including that time, then sets the
        clock to ``until``.  Returns the number of events executed
        (fast-forwarded timer occurrences count as if each had fired).
        """
        if self._running:
            raise SimulationError("engine is not re-entrant")
        self._running = True
        executed = 0
        # The near list is never rebound (advancing extends it in
        # place), so it can live in a local; _live and _now cannot —
        # callbacks mutate them through self.
        near = self._near
        pop = heappop
        try:
            if until is None and max_events is None and self._san is None:
                # The common case, kept free of per-event branch tests.
                while self._live:
                    if near:
                        time, _seq, kind, target, args = pop(near)
                    elif self._far_ids:
                        self._advance_window()
                        continue
                    else:
                        break
                    if kind == _K_CALL:
                        self._now = time
                        self._live -= 1
                        target(*args)  # simlint: dynamic=engine-dispatch
                        executed += 1
                    elif kind == _K_TIMER:
                        if target._stopped:
                            continue
                        if target._skip_fn is not None and self._ff:
                            probe = self._idle
                            if probe is not None and probe():  # simlint: dynamic=engine-dispatch
                                bound = self._peek_time()
                                if bound is not None and bound > time:
                                    period = target.period
                                    k = (bound - time + period - 1) // period
                                    target._skip_fn(k)
                                    seq = self._seq
                                    self._seq = seq + 1
                                    self._push(
                                        (time + k * period, seq, _K_TIMER, target, None)
                                    )
                                    executed += k
                                    continue
                        self._now = time
                        target._dispatch(time)
                        executed += 1
                    elif kind == _K_HANDLE:
                        if target.cancelled:
                            continue
                        self._now = time
                        target.fired = True
                        if not target.daemon:
                            self._live -= 1
                        target.fn(*target.args)  # simlint: dynamic=engine-dispatch
                        executed += 1
                    else:  # _K_CALL_D
                        self._now = time
                        target(*args)  # simlint: dynamic=engine-dispatch
                        executed += 1
                return executed
            ff = self._ff and max_events is None and self._san is None
            while True:
                if max_events is not None and executed >= max_events:
                    break
                if until is None and self._live == 0:
                    break
                if not near:
                    if self._far_ids:
                        self._advance_window()
                        continue
                    break
                entry = near[0]
                time = entry[0]
                kind = entry[2]
                # Dead entries are drained even past the deadline, as
                # the pre-calendar engine did.
                if kind == _K_HANDLE and entry[3].cancelled:
                    pop(near)
                    continue
                if kind == _K_TIMER and entry[3]._stopped:
                    pop(near)
                    continue
                if until is not None and time > until:
                    break
                pop(near)
                target = entry[3]
                if kind == _K_TIMER:
                    if ff and target._skip_fn is not None:
                        probe = self._idle
                        if probe is not None and probe():  # simlint: dynamic=engine-dispatch
                            nxt = self._peek_time()
                            bound = until + 1 if until is not None else None
                            if nxt is not None and (bound is None or nxt < bound):
                                bound = nxt
                            if bound is not None and bound > time:
                                period = target.period
                                k = (bound - time + period - 1) // period
                                target._skip_fn(k)
                                seq = self._seq
                                self._seq = seq + 1
                                self._push(
                                    (time + k * period, seq, _K_TIMER, target, None)
                                )
                                executed += k
                                continue
                    self._now = time
                    target._dispatch(time)
                elif kind == _K_HANDLE:
                    self._now = time
                    target.fired = True
                    if not target.daemon:
                        self._live -= 1
                    target.fn(*target.args)  # simlint: dynamic=engine-dispatch
                else:
                    self._now = time
                    if kind == _K_CALL:
                        self._live -= 1
                    target(*entry[4])  # simlint: dynamic=engine-dispatch
                if self._san is not None:
                    self._san()  # simlint: dynamic=engine-dispatch
                executed += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
        return executed

    def pending(self) -> int:
        """Number of scheduled, uncancelled events."""
        count = 0
        for bucket in [self._near, *self._far.values()]:
            for entry in bucket:
                kind = entry[2]
                if kind == _K_HANDLE:
                    if not entry[3].cancelled:
                        count += 1
                elif kind == _K_TIMER:
                    if not entry[3]._stopped:
                        count += 1
                else:
                    count += 1
        return count

    def live_events(self) -> int:
        """Number of pending non-daemon events."""
        return self._live


class PeriodicTimer:
    """A repeating event; reschedules itself after each firing.

    Occurrences are packed queue entries carrying the timer itself —
    no per-period handle allocation.  The engine dispatches them via
    :meth:`_dispatch`, which fires the callback *first* and then files
    the next occurrence, so callbacks' own scheduling wins the
    same-instant tie against the reschedule — the same order the
    handle-based implementation produced.
    """

    __slots__ = (
        "_engine", "period", "daemon", "_fn", "_args",
        "_stopped", "_scheduled", "_skip_fn",
    )

    def __init__(
        self,
        engine: Engine,
        period: int,
        fn: Callable[..., None],
        args: tuple,
        daemon: bool = True,
        skip_fn: Optional[Callable[[int], None]] = None,
    ):
        self._engine = engine
        self.period = period
        self.daemon = daemon
        self._fn = fn
        self._args = args
        self._stopped = False
        self._scheduled = False
        self._skip_fn = skip_fn

    def start(self, first_time: int) -> None:
        if self._stopped:
            raise SimulationError("timer already stopped")
        eng = self._engine
        if first_time < eng._now:
            raise SimulationError(
                f"cannot schedule event at {first_time} before now ({eng._now})"
            )
        seq = eng._seq
        eng._seq = seq + 1
        if not self.daemon:
            eng._live += 1
        eng._push((first_time, seq, _K_TIMER, self, None))
        self._scheduled = True

    def _dispatch(self, time: int) -> None:
        """Fire one occurrence (engine-internal; clock already set)."""
        eng = self._engine
        self._scheduled = False
        if not self.daemon:
            eng._live -= 1
        self._fn(*self._args)
        if not self._stopped:
            seq = eng._seq
            eng._seq = seq + 1
            if not self.daemon:
                eng._live += 1
            eng._push((time + self.period, seq, _K_TIMER, self, None))
            self._scheduled = True

    def stop(self) -> None:
        """Stop the timer.  Idempotent."""
        if self._stopped:
            return
        self._stopped = True
        if self._scheduled:
            self._scheduled = False
            if not self.daemon:
                self._engine._live -= 1
