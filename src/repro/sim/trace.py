"""Lightweight structured tracing for simulations.

A :class:`Tracer` collects ``(time, category, message, fields)`` records.
Tracing is off by default (the kernel holds a :class:`NullTracer`), so
instrumentation costs one attribute lookup and a truthiness test on the
hot paths.  Experiments enable it to debug scheduling decisions or to
build time-series of SPU resource usage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One trace event."""

    time: int
    category: str
    message: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.time:>12d}us] {self.category:<10s} {self.message} {extras}".rstrip()


class Tracer:
    """Collects trace records, optionally filtered by category."""

    __slots__ = ("records", "_categories")

    enabled = True

    def __init__(self, categories: Optional[Iterable[str]] = None):
        self.records: List[TraceRecord] = []
        self._categories = set(categories) if categories is not None else None

    def emit(self, time: int, category: str, message: str, **fields: Any) -> None:
        """Record one event if its category is selected."""
        if self._categories is not None and category not in self._categories:
            return
        self.records.append(TraceRecord(time, category, message, dict(fields)))

    def by_category(self, category: str) -> List[TraceRecord]:
        """All records with the given category, in time order."""
        return [r for r in self.records if r.category == category]

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)


class NullTracer(Tracer):
    """A tracer that drops everything; the default."""

    __slots__ = ()

    enabled = False

    def __init__(self):
        super().__init__(categories=())

    def emit(self, time: int, category: str, message: str, **fields: Any) -> None:
        return None
