"""Units and conversion helpers for the simulator.

Simulated time is kept as an integer number of **microseconds** so that
event ordering is exact and runs are reproducible bit-for-bit.  Sizes
are kept in bytes, with pages and sectors as the two granularities the
kernel and disk care about.
"""

from __future__ import annotations

# --- time ----------------------------------------------------------------

USEC = 1
MSEC = 1000 * USEC
SEC = 1000 * MSEC


def usecs(n: float) -> int:
    """Convert a count of microseconds to simulator ticks."""
    return round(n * USEC)


def msecs(n: float) -> int:
    """Convert a count of milliseconds to simulator ticks."""
    return round(n * MSEC)


def secs(n: float) -> int:
    """Convert a count of seconds to simulator ticks."""
    return round(n * SEC)


def to_seconds(ticks: int) -> float:
    """Convert simulator ticks back to (float) seconds for reporting."""
    return ticks / SEC


def to_millis(ticks: int) -> float:
    """Convert simulator ticks back to (float) milliseconds for reporting."""
    return ticks / MSEC


# --- sizes ---------------------------------------------------------------

KB = 1024
MB = 1024 * KB

SECTOR_SIZE = 512
PAGE_SIZE = 4 * KB
SECTORS_PER_PAGE = PAGE_SIZE // SECTOR_SIZE


def pages(nbytes: int) -> int:
    """Number of whole pages needed to hold ``nbytes`` (rounded up)."""
    return -(-nbytes // PAGE_SIZE)


def sectors(nbytes: int) -> int:
    """Number of whole sectors needed to hold ``nbytes`` (rounded up)."""
    return -(-nbytes // SECTOR_SIZE)
