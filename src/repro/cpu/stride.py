"""Stride scheduling at SPU granularity.

The paper's related work (Section 5) contrasts performance isolation
with Waldspurger's *stride scheduling* [Wal95], which provides
proportional-share CPU allocation without partitioning: each client
holds tickets, accrues *pass* value in proportion to CPU consumed over
its ticket count, and the scheduler always runs the client with the
minimum pass.

This module implements stride scheduling hierarchically — SPUs are the
clients (tickets = their milli-CPU entitlement); within the chosen SPU
the standard IRIX priority discipline applies — as an alternative
:class:`~repro.cpu.scheduler.CpuScheduler` so experiments can compare
the two approaches on identical workloads.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.schemes import SchemeConfig
from repro.cpu.scheduler import CpuScheduler, Processor, SchedulableProcess

#: Pass values advance by STRIDE1 / tickets per microsecond of CPU.
STRIDE1 = 1 << 20


class StrideCpuScheduler(CpuScheduler):
    """Proportional-share CPU scheduling over SPUs, no partition.

    Differences from the partitioned scheduler:

    * any CPU may run any SPU's process — there are no home CPUs, no
      loans, and no revocations;
    * fairness comes from pass values: the backlogged SPU with the
      minimum pass runs next, so long-run CPU time converges to the
      ticket (entitlement) ratio;
    * an SPU that was blocked rejoins at the current minimum pass
      (the standard re-joining rule), so it cannot hoard credit.
    """

    __slots__ = ("tickets", "_pass")

    def __init__(self, ncpus: int, scheme: SchemeConfig, tickets: Dict[int, int]):
        # Deliberately no partition: stride is the global alternative.
        super().__init__(ncpus, _unpartitioned(scheme), partition=None)
        if not tickets:
            raise ValueError("stride scheduling needs at least one SPU")
        if any(t <= 0 for t in tickets.values()):
            raise ValueError("tickets must be positive")
        self.tickets = dict(tickets)
        self._pass: Dict[int, float] = {spu: 0.0 for spu in tickets}

    # --- stride bookkeeping -------------------------------------------------

    def set_tickets(self, spu_id: int, tickets: int) -> None:
        """Add or re-weight a client (dynamic SPUs)."""
        if tickets <= 0:
            raise ValueError("tickets must be positive")
        self.tickets[spu_id] = tickets
        if spu_id not in self._pass:
            self._pass[spu_id] = self._min_backlogged_pass()

    def _min_backlogged_pass(self) -> float:
        values = [
            self._pass[spu] for spu in self._pass
            if self.waiting(spu) or any(
                c.running is not None and c.running.spu_id == spu
                for c in self.processors
            )
        ]
        if not values:
            values = list(self._pass.values())
        return min(values, default=0.0)

    def pass_of(self, spu_id: int) -> float:
        return self._pass[spu_id]

    def on_usage(self, spu_id: int, used_us: int) -> None:
        """Advance the SPU's pass for CPU time it consumed."""
        if used_us < 0:
            raise ValueError("usage must be >= 0")
        tickets = self.tickets.get(spu_id)
        if tickets:
            self._pass[spu_id] += used_us * STRIDE1 / tickets

    # --- scheduling overrides ----------------------------------------------

    def enqueue(self, proc: SchedulableProcess) -> None:
        if proc.spu_id not in self.tickets:
            raise ValueError(f"SPU {proc.spu_id} holds no tickets")
        was_empty = not self.waiting(proc.spu_id)
        super().enqueue(proc)
        if was_empty:
            # Re-joining rule: a waking client starts at the current
            # minimum pass rather than the stale value it left with.
            floor = self._min_backlogged_pass()
            if self._pass[proc.spu_id] < floor:
                self._pass[proc.spu_id] = floor

    def pick(self, cpu: Processor, now: int) -> Optional[SchedulableProcess]:
        if not cpu.idle:
            raise ValueError(f"cpu{cpu.cpu_id} is not idle")
        backlogged = [spu for spu in self._pass if self.waiting(spu)]
        if not backlogged:
            return None
        chosen = min(backlogged, key=lambda s: (self._pass[s], s))
        proc = self._pop_best(chosen, now)
        cpu.running = proc
        cpu.on_loan = False
        return proc

    def revocations(self) -> List[Processor]:
        """Stride has no loans; shares are enforced by pass ordering."""
        return []


def _unpartitioned(scheme: SchemeConfig) -> SchemeConfig:
    """The scheme with partitioning turned off (stride replaces it)."""
    from dataclasses import replace

    return replace(scheme, cpu_partitioned=False, cpu_lending=True)
