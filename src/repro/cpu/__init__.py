"""CPU substrate: IRIX-style priorities, hybrid space/time partitioning
of CPUs to SPUs, and the SPU-aware scheduler with lending/revocation."""

from repro.cpu.partition import CpuPartition, PartitionError, TimeSharedCpu
from repro.cpu.priorities import ProcessPriority, USAGE_HALF_LIFE
from repro.cpu.scheduler import CpuScheduler, Processor, SchedulableProcess
from repro.cpu.stride import STRIDE1, StrideCpuScheduler

__all__ = [
    "StrideCpuScheduler",
    "STRIDE1",
    "ProcessPriority",
    "USAGE_HALF_LIFE",
    "CpuPartition",
    "TimeSharedCpu",
    "PartitionError",
    "CpuScheduler",
    "Processor",
    "SchedulableProcess",
]
