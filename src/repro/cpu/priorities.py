"""IRIX-style degrading priorities.

"A priority-based scheduling scheme is used in which the priority of a
process drops as it uses CPU time" (Section 3.1).  Each process carries
a base priority plus a decaying record of recent CPU usage; the
scheduler always picks the runnable process with the *best* (lowest)
effective priority.  Recent usage decays with a one-second half-life,
applied lazily from timestamps so no periodic work is needed.
"""

from __future__ import annotations

import math

from repro.sim.units import MSEC, SEC

#: Half-life of the recent-CPU-usage component.
USAGE_HALF_LIFE = 1 * SEC

#: How much effective priority worsens per millisecond of recent usage.
USAGE_WEIGHT_PER_MS = 1.0 / 10.0

#: Offset of the kernel priority band.  IRIX-style: a process holding
#: a contended kernel resource runs at a kernel priority — strictly
#: better than every user-band value and *non-degrading*, so recent
#: CPU usage cannot push a boosted lock holder back behind a flood of
#: fresh runnable siblings.
KERNEL_PRIORITY_BAND = -1000


class ProcessPriority:
    """Priority state for one process; lower effective value runs first.

    :meth:`effective` sits inside the scheduler's best-pick loop, so the
    lazy decay is inlined there (and in :meth:`recent_cpu_ms`) rather
    than factored through a helper — the arithmetic is kept
    expression-identical in every copy so all paths decay to the same
    float values.
    """

    __slots__ = ("base", "kernel_priority", "_recent_us", "_stamp")

    def __init__(self, base: int = 20, now: int = 0):
        self.base = base
        #: Non-degrading kernel-band priority, or None while in the
        #: user band (see :data:`KERNEL_PRIORITY_BAND`).
        self.kernel_priority = None
        self._recent_us = 0.0
        self._stamp = now

    def _decay_to(self, now: int) -> None:
        if now <= self._stamp:
            return
        # 0.0 times any decay factor is 0.0, so the pow() is skipped
        # for never-charged priorities without changing any float.
        if self._recent_us != 0.0:
            elapsed = now - self._stamp
            self._recent_us *= math.pow(0.5, elapsed / USAGE_HALF_LIFE)
        self._stamp = now

    def charge(self, used_us: int, now: int) -> None:
        """Record CPU time consumed; worsens the priority."""
        if used_us < 0:
            raise ValueError(f"cannot charge negative CPU time {used_us}")
        self._decay_to(now)
        self._recent_us += used_us

    def recent_cpu_ms(self, now: int) -> float:
        """Decayed recent usage in milliseconds."""
        if now > self._stamp:
            elapsed = now - self._stamp
            self._recent_us *= math.pow(0.5, elapsed / USAGE_HALF_LIFE)
            self._stamp = now
        return self._recent_us / MSEC

    def effective(self, now: int) -> float:
        """The value the scheduler compares; lower is better."""
        if self.kernel_priority is not None:
            return float(self.kernel_priority)
        if now > self._stamp:
            elapsed = now - self._stamp
            self._recent_us *= math.pow(0.5, elapsed / USAGE_HALF_LIFE)
            self._stamp = now
        return self.base + (self._recent_us / MSEC) * USAGE_WEIGHT_PER_MS
