"""SPU-aware CPU scheduling (paper Section 3.1).

The scheduler owns the run queues and the processor table; the kernel
drives it (dispatching is the kernel's job because only the kernel
knows how long a process will run before blocking or faulting).

Scheme behaviour:

* **SMP** — one logical queue; any CPU picks the globally
  best-priority runnable process.
* **Quo** — CPUs pick only from their home SPU; an idle CPU with no
  home work stays idle.
* **PIso** — like Quo, but an idle CPU may *borrow*: it runs the best
  foreign runnable process, and the loan is revoked — at the next
  clock tick, bounding revocation latency at 10 ms — as soon as a
  home-SPU process is runnable with no available home CPU.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Protocol

from repro.core.schemes import SchemeConfig
from repro.cpu.partition import CpuPartition
from repro.cpu.priorities import (
    USAGE_HALF_LIFE,
    USAGE_WEIGHT_PER_MS,
    ProcessPriority,
)
from repro.sim.units import MSEC


class SchedulableProcess(Protocol):
    """What the scheduler needs to know about a process."""

    pid: int
    spu_id: int
    priority: ProcessPriority


class Processor:
    """One CPU's scheduling state."""

    __slots__ = ("cpu_id", "running", "on_loan", "no_loan_until", "online")

    def __init__(self, cpu_id: int):
        self.cpu_id = cpu_id
        self.running: Optional[SchedulableProcess] = None
        #: Set when the running process belongs to a foreign SPU.
        self.on_loan: bool = False
        #: After a revocation, no new loans before this time (damps
        #: loan ping-ponging; 0 = no hold-down in effect).
        self.no_loan_until: int = 0
        #: Cleared by CPU hot-remove; an offline CPU never reports
        #: itself idle, so no dispatch path will hand it work.
        self.online: bool = True

    @property
    def idle(self) -> bool:
        return self.online and self.running is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pid = self.running.pid if self.running else None
        state = "" if self.online else " OFFLINE"
        return f"<cpu{self.cpu_id} running={pid} loan={self.on_loan}{state}>"


class CpuScheduler:
    """Run queues plus the pick/lend/revoke logic."""

    __slots__ = (
        "scheme", "partition", "processors", "_queues",
        "loans_granted", "loans_revoked", "eligibility",
    )

    def __init__(
        self,
        ncpus: int,
        scheme: SchemeConfig,
        partition: Optional[CpuPartition] = None,
    ):
        if scheme.cpu_partitioned and partition is None:
            raise ValueError(f"scheme {scheme.name} requires a CPU partition")
        self.scheme = scheme
        self.partition = partition
        self.processors = [Processor(i) for i in range(ncpus)]
        #: Waiting (runnable but not running) processes per SPU.
        self._queues: Dict[int, List[SchedulableProcess]] = {}
        #: Loan/revocation counters for reporting.
        self.loans_granted = 0
        self.loans_revoked = 0
        #: Optional dispatch filter (e.g. gang co-scheduling): a queued
        #: process is only considered when this returns True.
        self.eligibility: Optional[Callable[[SchedulableProcess, int], bool]] = None

    def online_processors(self) -> List[Processor]:
        """CPUs not removed by a hardware fault, in id order."""
        return [c for c in self.processors if c.online]

    # --- run queue ----------------------------------------------------------

    def enqueue(self, proc: SchedulableProcess) -> None:
        """Add a runnable process to its SPU's queue."""
        queue = self._queues.setdefault(proc.spu_id, [])
        if proc in queue:
            raise ValueError(f"process {proc.pid} already queued")
        queue.append(proc)

    def dequeue(self, proc: SchedulableProcess) -> None:
        """Remove a process from its queue (e.g. on kill)."""
        queue = self._queues.get(proc.spu_id, [])
        if proc in queue:
            queue.remove(proc)

    def waiting(self, spu_id: Optional[int] = None) -> int:
        if spu_id is not None:
            return len(self._queues.get(spu_id, []))
        return sum(len(q) for q in self._queues.values())

    def _best(self, procs: List[SchedulableProcess], now: int) -> SchedulableProcess:
        # Equivalent to min() keyed on (priority.effective(now), pid),
        # written as a plain loop with ProcessPriority.effective inlined:
        # this runs for every candidate on every dispatch and dominated
        # the scheduler's profile.  The decay arithmetic is kept
        # expression-identical to ProcessPriority.effective so both
        # paths produce the same floats.
        best = None
        best_eff = 0.0
        best_pid = 0
        pow_ = math.pow
        for p in procs:
            pr = p.priority
            kp = pr.kernel_priority
            if kp is not None:
                eff = float(kp)
            else:
                stamp = pr._stamp
                if now > stamp:
                    # 0.0 times any decay factor is 0.0: skipping the
                    # pow() call for never-charged (or fully decayed-
                    # to-zero) priorities changes no float.
                    recent = pr._recent_us
                    if recent != 0.0:
                        elapsed = now - stamp
                        pr._recent_us = recent * pow_(0.5, elapsed / USAGE_HALF_LIFE)
                    pr._stamp = now
                eff = pr.base + (pr._recent_us / MSEC) * USAGE_WEIGHT_PER_MS
            if (
                best is None
                or eff < best_eff
                or (eff == best_eff and p.pid < best_pid)
            ):
                best = p
                best_eff = eff
                best_pid = p.pid
        return best

    def _eligible(self, procs: List[SchedulableProcess], now: int) -> List[SchedulableProcess]:
        if self.eligibility is None:
            return procs
        return [p for p in procs if self.eligibility(p, now)]  # simlint: dynamic=callback-field

    def _pop_best(self, spu_id: int, now: int) -> Optional[SchedulableProcess]:
        queue = self._eligible(self._queues.get(spu_id, []), now)
        if not queue:
            return None
        best = self._best(queue, now)
        self._queues[spu_id].remove(best)
        return best

    def _pop_best_foreign(self, home: Optional[int], now: int) -> Optional[SchedulableProcess]:
        candidates = self._eligible(
            [p for spu_id, q in self._queues.items() if spu_id != home for p in q],
            now,
        )
        if not candidates:
            return None
        best = self._best(candidates, now)
        self._queues[best.spu_id].remove(best)
        return best

    # --- dispatch decisions -----------------------------------------------------

    def home_of(self, cpu: Processor) -> Optional[int]:
        if self.partition is None:
            return None
        return self.partition.home_of(cpu.cpu_id)

    def pick(self, cpu: Processor, now: int) -> Optional[SchedulableProcess]:
        """Choose the next process for an idle CPU (marks it running)."""
        if not cpu.idle:
            raise ValueError(f"cpu{cpu.cpu_id} is not idle")
        if not self.scheme.cpu_partitioned:
            proc = self._pop_best_foreign(home=None, now=now)
            loan = False
        else:
            home = self.home_of(cpu)
            proc = self._pop_best(home, now) if home is not None else None
            loan = False
            if proc is None and self.scheme.cpu_lending and now >= cpu.no_loan_until:
                proc = self._pop_best_foreign(home, now)
                loan = proc is not None
        if proc is None:
            return None
        cpu.running = proc
        cpu.on_loan = loan
        if loan:
            self.loans_granted += 1
        return proc

    def release(self, cpu: Processor) -> None:
        """The running process left the CPU (blocked, exited, preempted)."""
        cpu.running = None
        cpu.on_loan = False

    def on_usage(self, spu_id: int, used_us: int) -> None:
        """Usage feedback hook; the stride subclass advances passes."""
        return None

    def find_cpu_for(
        self, proc: SchedulableProcess, now: int = 0
    ) -> Optional[Processor]:
        """An idle CPU that could run ``proc`` right now, if any.

        Home CPUs are preferred; with lending enabled any idle CPU
        whose loan hold-down has expired qualifies.  Used to wake a CPU
        when a process becomes runnable rather than waiting for the
        next natural dispatch.
        """
        idle = [c for c in self.processors if c.online and c.running is None]
        if not idle:
            return None
        if not self.scheme.cpu_partitioned:
            return idle[0]
        home_get = self.partition._home.get
        for cpu in idle:
            if home_get(cpu.cpu_id) == proc.spu_id:
                return cpu
        if self.scheme.cpu_lending:
            lendable = [c for c in idle if now >= c.no_loan_until]
            return lendable[0] if lendable else None
        return None

    # --- loan revocation ---------------------------------------------------------

    def revocations(self) -> List[Processor]:
        """CPUs whose loans must be revoked at this clock tick.

        A loan is revoked when the loaning (home) SPU has a runnable
        process waiting and no available home CPU to run it.  One CPU
        is revoked per waiting process.
        """
        if not (self.scheme.cpu_partitioned and self.scheme.cpu_lending):
            return []
        to_revoke: List[Processor] = []
        # This scan runs on every clock tick; one pass over the
        # processor table per queue, with the partition's home map
        # bound locally (it is rebuilt — rebound — on CPU hot-remove,
        # so it must not be cached across calls).
        home_get = self.partition._home.get
        for spu_id, queue in self._queues.items():
            if not queue:
                continue
            # Idle home CPUs will be dispatched anyway; only loaned-out
            # ones need revoking.
            loaned: List[Processor] = []
            idle_home = 0
            for c in self.processors:
                if home_get(c.cpu_id) == spu_id:
                    if c.on_loan:
                        loaned.append(c)
                    elif c.online and c.running is None:
                        idle_home += 1
            needed = len(queue) - idle_home
            for cpu in loaned[: max(0, needed)]:
                to_revoke.append(cpu)
        for cpu in to_revoke:
            self.loans_revoked += 1
        return to_revoke

    # --- time-partition rotation ---------------------------------------------------

    def rotate_time_shared(self) -> List[Processor]:
        """Advance time-shared CPUs; returns CPUs whose home changed."""
        if self.partition is None:
            return []
        changed = self.partition.tick()
        return [self.processors[c] for c in changed]
