"""Hybrid space/time partitioning of CPUs to SPUs (paper Section 3.1).

Each SPU first gets an integral number of dedicated CPUs from its
entitlement ("space partitioning").  Fractional leftovers are packed
onto the remaining CPUs, which are *time partitioned*: their home SPU
rotates tick by tick in proportion to each SPU's fractional share,
using a deficit (credit) scheme so long-run time matches the fractions
exactly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.resources import MILLI_CPU


class PartitionError(ValueError):
    """Raised for infeasible partitions."""


class TimeSharedCpu:
    """Rotation state for one time-partitioned CPU.

    ``shares`` maps SPU id to its fraction of this CPU in milli-CPUs
    (summing to at most one CPU).  Each call to :meth:`advance` banks
    every SPU's share as credit and grants the tick to the party with
    the most credit, charging it one tick (deficit round-robin).  Idle
    slack — shares summing below 1000 — is modelled as an implicit
    idle party, so its ticks come out as ``None`` (the CPU is then free
    for lending) in exact proportion, while a fully subscribed CPU
    never idles.
    """

    __slots__ = ("cpu_id", "shares", "_credit", "_idle_share")

    #: Key for the implicit idle party in the credit table.
    _IDLE = None

    def __init__(self, cpu_id: int, shares: Dict[int, int]):
        total = sum(shares.values())
        if total > MILLI_CPU:
            raise PartitionError(
                f"shares on cpu {cpu_id} sum to {total} > {MILLI_CPU}"
            )
        if any(v <= 0 for v in shares.values()):
            raise PartitionError("time shares must be positive")
        self.cpu_id = cpu_id
        self.shares = dict(shares)
        self._credit: Dict[Optional[int], float] = {spu: 0.0 for spu in shares}
        self._idle_share = MILLI_CPU - total
        if self._idle_share:
            self._credit[self._IDLE] = 0.0

    def advance(self) -> Optional[int]:
        """Bank one tick of credit and return the SPU that owns this tick."""
        if not self.shares:
            return None
        for spu, share in self.shares.items():
            self._credit[spu] += share / MILLI_CPU
        if self._idle_share:
            self._credit[self._IDLE] += self._idle_share / MILLI_CPU
        # Ties go to a real SPU (smallest id) before the idle party.
        owner = max(
            self._credit,
            key=lambda s: (self._credit[s], s is not self._IDLE, -(s or 0)),
        )
        self._credit[owner] -= 1.0
        return owner


# One CpuPartition per kernel, rebuilt only on CPU hot-plug; the hot
# per-tick state lives in TimeSharedCpu, which has __slots__.
class CpuPartition:  # simlint: disable=SL401
    """The machine-wide CPU-to-SPU assignment."""

    def __init__(
        self,
        ncpus: int,
        entitlements: Dict[int, int],
        cpu_ids: Optional[Sequence[int]] = None,
    ):
        """``entitlements`` maps SPU id to milli-CPUs; must sum to at
        most ``len(cpu_ids) * 1000``.

        ``cpu_ids`` names the processors the partition may use —
        after a CPU hot-remove the partition is rebuilt over the
        survivors, whose ids are no longer contiguous.  ``None`` means
        the dense ``range(ncpus)`` of a healthy machine.
        """
        if cpu_ids is None:
            cpu_ids = list(range(ncpus))
        else:
            cpu_ids = sorted(cpu_ids)
            if len(set(cpu_ids)) != len(cpu_ids):
                raise PartitionError(f"duplicate cpu ids in {cpu_ids}")
            if len(cpu_ids) != ncpus:
                raise PartitionError(
                    f"ncpus ({ncpus}) disagrees with cpu_ids ({len(cpu_ids)})"
                )
        if ncpus <= 0:
            raise PartitionError("machine must have at least one CPU")
        total = sum(entitlements.values())
        if total > ncpus * MILLI_CPU:
            raise PartitionError(
                f"entitlements sum to {total} > machine's {ncpus * MILLI_CPU}"
            )
        self.ncpus = ncpus
        self.cpu_ids: List[int] = list(cpu_ids)
        self.entitlements = dict(entitlements)
        #: cpu id -> home SPU id, for dedicated (space-partitioned) CPUs.
        self.dedicated: Dict[int, int] = {}
        #: cpu id -> rotation state, for time-partitioned CPUs.
        self.time_shared: Dict[int, TimeSharedCpu] = {}
        self._home: Dict[int, Optional[int]] = {c: None for c in self.cpu_ids}
        self._build()

    def _build(self) -> None:
        cpu_iter = iter(self.cpu_ids)
        next_cpu = 0  # count of CPUs assigned so far
        fractions: List[Tuple[int, int]] = []  # (spu_id, leftover milli-CPUs)
        for spu_id in sorted(self.entitlements):
            whole, frac = divmod(self.entitlements[spu_id], MILLI_CPU)
            for _ in range(whole):
                cpu_id = next(cpu_iter)
                self.dedicated[cpu_id] = spu_id
                self._home[cpu_id] = spu_id
                next_cpu += 1
            if frac:
                fractions.append((spu_id, frac))

        # Pack fractional shares onto the remaining CPUs, splitting a
        # share across CPUs when it does not fit whole (an SPU then
        # gets rotation ticks on more than one time-shared CPU, which
        # adds up to the same fraction of the machine).
        fractions.sort(key=lambda e: (-e[1], e[0]))
        bins: List[Dict[int, int]] = []
        capacities: List[int] = []
        for spu_id, frac in fractions:
            remaining = frac
            for i, cap in enumerate(capacities):
                if remaining == 0:
                    break
                if cap > 0:
                    take = min(cap, remaining)
                    bins[i][spu_id] = bins[i].get(spu_id, 0) + take
                    capacities[i] -= take
                    remaining -= take
            while remaining > 0:
                take = min(MILLI_CPU, remaining)
                # Partition construction: runs at boot and on CPU
                # hot-plug/renegotiation, not on per-event dispatch.
                bins.append({spu_id: take})  # simlint: disable=SL402
                capacities.append(MILLI_CPU - take)
                remaining -= take
        if next_cpu + len(bins) > self.ncpus:
            raise PartitionError(
                f"need {next_cpu + len(bins)} CPUs for this partition,"
                f" machine has {self.ncpus}"
            )
        for shares in bins:
            cpu_id = next(cpu_iter)
            self.time_shared[cpu_id] = TimeSharedCpu(cpu_id, shares)
            next_cpu += 1

    # --- queries ---------------------------------------------------------

    def home_of(self, cpu_id: int) -> Optional[int]:
        """Current home SPU of a CPU (None for an unassigned CPU)."""
        return self._home.get(cpu_id)

    def cpus_of(self, spu_id: int) -> List[int]:
        """CPUs currently homed to an SPU."""
        return [c for c, s in self._home.items() if s == spu_id]

    def is_time_shared(self, cpu_id: int) -> bool:
        return cpu_id in self.time_shared

    # --- tick rotation ------------------------------------------------------

    def tick(self) -> List[int]:
        """Advance time-shared CPUs one tick.

        Returns the CPUs whose home SPU changed, so the kernel can
        preempt and re-dispatch them.
        """
        changed: List[int] = []
        for cpu_id, rotation in self.time_shared.items():
            new_home = rotation.advance()
            if new_home != self._home[cpu_id]:
                self._home[cpu_id] = new_home
                changed.append(cpu_id)
        return changed
