"""Kernel overload hardening: admission limits for abusive workloads.

The paper's isolation mechanisms divide *capacity* — CPUs, pages, disk
bandwidth — but a workload can also attack the kernel's *resource
paths*: fork storms that explode the process table, thrashers that pin
the fault path, floods of file I/O that grow the disk queues without
bound.  :class:`OverloadPolicy` bundles the limits the kernel enforces
against that abuse, all charged to the offending SPU only:

* **process-count limits** — a ``Spawn`` syscall past the per-SPU cap
  fails (the behaviour receives ``-1`` instead of a pid) after a forced
  backoff, so a fork bomb burns its own time slice retrying;
* **file-I/O admission control** — each SPU may have a bounded number
  of file syscalls in flight; excess syscalls wait in a backpressure
  loop and *fail* (resume with ``-1``) once they sit past the deadline,
  so an I/O flood cannot grow kernel queues without bound;
* **the OOM policy** — sustained complete allocation failure in one
  SPU kills the largest memory offender *inside that SPU only* (see
  :meth:`repro.kernel.kernel.Kernel.oom_kill`).

The escalation ladder on top of these limits — detect, throttle
(halved limits), kill — lives in
:class:`repro.faults.invariants.OverloadGuard`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.units import MSEC, SEC


@dataclass(frozen=True)
class OverloadPolicy:
    """Per-SPU admission limits the kernel enforces on syscall paths.

    The defaults are high enough that well-behaved workloads (every
    experiment in the paper's evaluation) never notice them; only
    adversarial workloads trip the limits.
    """

    #: Live processes one user SPU may hold; a ``Spawn`` syscall past
    #: the cap is denied.  ``None`` disables the limit.
    max_procs_per_spu: Optional[int] = 128
    #: Forced wait before a denied ``Spawn`` resumes (with ``-1``), so
    #: a fork bomb cannot busy-loop the spawn path.
    spawn_backoff_us: int = 10 * MSEC
    #: File syscalls (read/write/metadata) one user SPU may have in
    #: flight; excess syscalls wait in the admission loop.  ``None``
    #: disables admission control.
    max_inflight_io_per_spu: Optional[int] = 64
    #: How often a queued file syscall re-tries admission.
    io_retry_us: int = 2 * MSEC
    #: A file syscall still waiting for admission this long after it
    #: was issued fails (the behaviour receives ``-1``) instead of
    #: queueing forever.
    io_deadline_us: int = 2 * SEC
    #: Consecutive *complete* page-allocation failures (no page even
    #: after stealing) charged to one SPU before the kernel OOM-kills
    #: that SPU's largest process.  0 disables the inline OOM trigger.
    oom_failure_streak: int = 256

    def __post_init__(self) -> None:
        if self.max_procs_per_spu is not None and self.max_procs_per_spu < 1:
            raise ValueError("max_procs_per_spu must allow at least one process")
        if self.max_inflight_io_per_spu is not None and self.max_inflight_io_per_spu < 1:
            raise ValueError("max_inflight_io_per_spu must allow at least one syscall")
        if self.spawn_backoff_us < 0:
            raise ValueError("spawn_backoff_us must be >= 0")
        if self.io_retry_us <= 0:
            raise ValueError("io_retry_us must be positive")
        if self.io_deadline_us <= 0:
            raise ValueError("io_deadline_us must be positive")
        if self.oom_failure_streak < 0:
            raise ValueError("oom_failure_streak must be >= 0")

    def clamped(self, limit: Optional[int]) -> Optional[int]:
        """A throttled SPU's version of ``limit`` (halved, at least 1)."""
        if limit is None:
            return None
        return max(1, limit // 2)
