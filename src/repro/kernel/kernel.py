"""The simulated operating system kernel.

The :class:`Kernel` assembles the whole machine from a
:class:`~repro.kernel.machine.MachineConfig` — CPUs and their
scheduler, the page pool, one drive+volume per disk, the buffer-cached
filesystem — and runs processes written as syscall-yielding generators.

The lifecycle of an experiment::

    kernel = Kernel(MachineConfig(ncpus=8, memory_mb=44, scheme=piso_scheme()))
    spu = kernel.create_spu("user1")
    kernel.boot()                      # divide the machine per contract
    src = kernel.fs.create(0, "src.c", 64 * KB)
    kernel.spawn(my_behavior(src), spu)
    kernel.run()                       # until all processes exit
"""

from __future__ import annotations

import dataclasses
import itertools
from functools import partial
from typing import Dict, List, Optional

from repro.core.accounting import CpuTimeAccount
from repro.core.resources import MILLI_CPU, Resource
from repro.core.spu import SPU, SPURegistry
from repro.cpu.partition import CpuPartition
from repro.cpu.scheduler import CpuScheduler, Processor
from repro.disk.drive import DiskDrive, SpuBandwidthLedger
from repro.disk.request import DiskOp, DiskRequest
from repro.disk.schedulers import make_scheduler
from repro.fs.buffercache import BufferCache
from repro.fs.filesystem import FileSystem
from repro.fs.layout import Volume
from repro.kernel.machine import MachineConfig
from repro.kernel.process import Process, ProcessState
from repro.kernel.syscalls import (
    Acquire,
    BarrierWait,
    Behavior,
    Checkpoint,
    Compute,
    ReadFile,
    Release,
    SendNetwork,
    SetWorkingSet,
    Sleep,
    Spawn,
    WaitChildren,
    WriteFile,
    WriteMetadata,
)
from repro.net.link import NetByteLedger, NetworkLink
from repro.net.schedulers import make_link_scheduler
from repro.mem.manager import MemoryManager
from repro.mem.pageout import PageoutDaemon
from repro.mem.sharing import MemorySharingDaemon
from repro.mem.workingset import WorkingSetModel
from repro.sim.engine import Engine
from repro.sim.trace import NullTracer, Tracer
from repro.sim.units import SECTORS_PER_PAGE


class KernelError(RuntimeError):
    """Raised for kernel API misuse (spawning before boot, etc.)."""


# Singleton facade holding ~40 subsystem references; __slots__ would
# buy nothing per-instance and break test monkeypatching.
class Kernel:  # simlint: disable=SL401
    """Boots the machine and interprets process behaviour."""

    def __init__(self, config: MachineConfig, tracer: Optional[Tracer] = None):
        self.config = config
        self.scheme = config.scheme
        self.engine = Engine(config.seed)
        #: Structured event trace; a NullTracer (free) unless one is
        #: passed in.  Categories: proc, sched, mem.
        self.tracer = tracer if tracer is not None else NullTracer()
        self.registry = SPURegistry()
        self.memory = MemoryManager(
            self.registry,
            config.total_pages,
            config.scheme,
            kernel_pages=config.boot_kernel_pages,
            rng=self.engine.fork_rng("mem-victim"),
        )

        # --- disks and filesystem ----------------------------------------
        self.drives: List[DiskDrive] = []
        self._swap_base: List[int] = []
        self._swap_sectors: List[int] = []
        cache = BufferCache(self.memory)
        self.fs = FileSystem(self.engine, cache)
        for i, spec in enumerate(config.disks):
            policy = spec.policy if spec.policy is not None else config.scheme.disk_policy
            scheduler = make_scheduler(
                policy.value, config.scheme.params.bw_difference_threshold
            )
            ledger = SpuBandwidthLedger(
                i, self.registry, config.scheme.params.disk_decay_period
            )
            drive = DiskDrive(
                self.engine, spec.geometry, scheduler, ledger, disk_id=i,
                fault_rng=self.engine.fork_rng(f"disk-fault-{i}"),
            )
            drive.on_failed = partial(self._reroute_failed, i)
            volume = Volume(
                spec.geometry.total_sectors - spec.swap_sectors,
                self.engine.fork_rng(f"volume-{i}"),
            )
            self.fs.mount(drive, volume)
            self.drives.append(drive)
            self._swap_base.append(spec.geometry.total_sectors - spec.swap_sectors)
            self._swap_sectors.append(spec.swap_sectors)

        # --- network interfaces ------------------------------------------
        self.links: List[NetworkLink] = []
        for i, nic in enumerate(config.nics):
            ledger = NetByteLedger(
                self.registry, decay_period=config.scheme.params.disk_decay_period
            )
            self.links.append(
                NetworkLink(
                    self.engine,
                    make_link_scheduler(nic.policy, nic.threshold),
                    ledger,
                    bandwidth_mbps=nic.bandwidth_mbps,
                    link_id=i,
                )
            )

        # --- CPU side (built at boot, once the SPUs exist) -------------------
        self.cpusched: Optional[CpuScheduler] = None
        self.memdaemon: Optional[MemorySharingDaemon] = None
        self.pageout: Optional[PageoutDaemon] = None
        self.cpu_account = CpuTimeAccount()
        #: Busy microseconds per CPU, for utilization reporting.
        self.cpu_busy_us: Dict[int, int] = {}
        #: Total slice transitions (a context-switch proxy).
        self.context_switches = 0

        # --- processes -----------------------------------------------------
        self.processes: Dict[int, Process] = {}
        self._next_pid = itertools.count(1)
        #: SPU id -> mount index used for its swap I/O (default mount 0).
        self._swap_mount: Dict[int, int] = {}

        self._swap_rng = self.engine.fork_rng("kernel-swap")
        self._dirty_rng = self.engine.fork_rng("kernel-dirty")
        #: Probability a stolen anonymous page is dirty and must be
        #: written to swap before reuse.
        self.dirty_eviction_fraction = 0.5

        # --- hardware fault state (see repro.faults) -----------------------
        #: Dead disk id -> surviving disk id its traffic moved to.
        self._disk_redirect: Dict[int, int] = {}
        #: Disk ids that failed permanently, in failure order.
        self.disks_failed: List[int] = []
        #: Online CPU count plus a piecewise-constant capacity integral,
        #: so utilization and the invariant watchdog stay correct when
        #: processors come and go mid-run.
        self._n_online_cpus = config.ncpus
        self._capacity_integral_us = 0
        self._capacity_since = 0
        self.cpus_removed = 0
        self.cpus_added = 0
        #: Contract renegotiations triggered by capacity changes or SPU
        #: population changes.
        self.renegotiations = 0
        #: Swap I/Os that came back failed after retries (their pages
        #: are refaulted as zero-fill; the data loss is recorded here).
        self.swap_io_errors = 0

        # --- overload hardening (see repro.kernel.overload) ----------------
        self.overload = config.overload
        #: Spawn syscalls denied by the per-SPU process limit, per SPU.
        self.spawn_denials: Dict[int, int] = {}
        #: File syscalls delayed at least once by admission control.
        self.io_throttled: Dict[int, int] = {}
        #: File syscalls failed at the admission deadline, per SPU.
        self.io_rejected: Dict[int, int] = {}
        #: Processes killed by the OOM policy, per SPU.
        self.oom_kills: Dict[int, int] = {}
        #: File syscalls currently in flight, per SPU.
        self._io_inflight: Dict[int, int] = {}
        #: SPUs under watchdog escalation (halved admission limits).
        self._throttled_spus: set = set()
        #: Consecutive complete page-allocation failures, per SPU.
        self._oom_pressure: Dict[int, int] = {}

        #: Installed at boot when REPRO_SIMSAN=1 (see repro.sanitizer).
        self.sanitizer = None

        self._booted = False

    # --- configuration ---------------------------------------------------------

    def create_spu(self, name: str) -> SPU:
        """Create a user SPU; must happen before :meth:`boot`."""
        if self._booted:
            raise KernelError("create SPUs before boot()")
        spu = self.registry.create(name)
        spu.disk_bw().set_entitled(1)
        return spu

    # --- dynamic SPU lifecycle (paper Section 2.1: SPUs "can be
    # created and destroyed dynamically, or could be suspended when
    # they have no active processes and awakened at a later time") -----

    def add_spu(self, name: str) -> SPU:
        """Create a user SPU after boot; the machine is re-divided."""
        if not self._booted:
            return self.create_spu(name)
        spu = self.registry.create(name)
        spu.disk_bw().set_entitled(1)
        self.rebalance_spus()
        return spu

    def retire_spu(self, spu: SPU) -> None:
        """Destroy an SPU (it must have no processes) and re-divide."""
        self.registry.destroy(spu)
        if self._booted:
            self.rebalance_spus()

    def suspend_spu(self, spu: SPU) -> None:
        """Suspend an idle SPU; its shares go back into the pool."""
        self.registry.suspend(spu)
        if self._booted:
            self.rebalance_spus()

    def resume_spu(self, spu: SPU) -> None:
        """Wake a suspended SPU; it gets its share back."""
        self.registry.resume(spu)
        if self._booted:
            self.rebalance_spus()

    def rebalance_spus(self) -> None:
        """Re-divide CPUs and memory over the active user SPUs.

        Called when the SPU population changes *or* when machine
        capacity changes (CPU hot-remove/add, memory module loss).  The
        sharing contract renegotiates entitlements over the surviving
        capacity — degradation stays proportional to each SPU's
        contractual weight.  The CPU partition is rebuilt from scratch
        over the online processors; CPUs whose home changed are
        preempted at once (this is a rare administrative event, so the
        cost of a machine-wide reshuffle is acceptable).
        """
        if not self._booted:
            raise KernelError("boot() before rebalancing")
        users = self.registry.active_user_spus()
        if not users:
            return
        self.renegotiations += 1
        sched = self._sched()
        online = sched.online_processors()
        capacity = len(online) * MILLI_CPU
        cpu_entitlements = self.config.contract.renegotiate(
            capacity, users, Resource.CPU
        )
        for spu_id in cpu_entitlements:
            levels = self.registry.get(spu_id).cpu()
            if self.scheme.cpu_lending:
                levels.set_allowed(max(capacity, levels.used))
        if self.scheme.cpu_stride:
            from repro.cpu.stride import StrideCpuScheduler

            assert isinstance(sched, StrideCpuScheduler)
            for spu_id, millicpus in cpu_entitlements.items():
                sched.set_tickets(spu_id, max(1, millicpus))
        elif self.scheme.cpu_partitioned:
            old_home = {c.cpu_id: sched.home_of(c) for c in sched.processors}
            sched.partition = CpuPartition(
                len(online), cpu_entitlements, cpu_ids=[c.cpu_id for c in online]
            )
            for cpu in sched.processors:
                if old_home[cpu.cpu_id] == sched.home_of(cpu):
                    continue
                if cpu.running is not None:
                    self._preempt(cpu)
                else:
                    self._dispatch(cpu)
        # Memory follows the same contract over the surviving pool.
        self.config.contract.renegotiate(
            self.memory.user_pool(), users, Resource.MEMORY
        )
        if not self.scheme.mem_limits:
            for spu in users:
                levels = spu.memory()
                levels.set_allowed(max(self.memory.total_pages, levels.used))
        if self.memdaemon is not None:
            self.memdaemon.rebalance()

    def set_contract(self, contract, rebalance: bool = True) -> None:
        """Replace the machine's sharing contract mid-run.

        The fleet failover path: when an evacuated SPU is admitted onto
        this machine (possibly at a degraded fraction of its contract),
        the machine's contract gains the newcomer's weight and every
        hosted SPU's entitlement is renegotiated over the same
        capacity.  ``rebalance=False`` defers the renegotiation for
        callers that are about to add/remove SPUs anyway (those paths
        rebalance themselves).
        """
        self.config = dataclasses.replace(self.config, contract=contract)
        if rebalance and self._booted:
            self.rebalance_spus()

    def set_swap_mount(self, spu: SPU, mount: int) -> None:
        """Route an SPU's paging I/O to a specific disk."""
        if not 0 <= mount < len(self.drives):
            raise KernelError(f"no mount {mount}")
        self._swap_mount[spu.spu_id] = mount

    def boot(self) -> None:
        """Divide the machine per the contract and start the daemons."""
        if self._booted:
            raise KernelError("kernel already booted")
        users = self.registry.active_user_spus()
        if not users:
            raise KernelError("create at least one SPU before boot()")

        # CPU entitlements in milli-CPUs.
        cpu_entitlements = self.config.contract.entitlements(
            self.config.ncpus * MILLI_CPU, users
        )
        for spu_id, millicpus in cpu_entitlements.items():
            levels = self.registry.get(spu_id).cpu()
            levels.set_entitled(millicpus)
            levels.set_allowed(
                millicpus if not self.scheme.cpu_lending
                else self.config.ncpus * MILLI_CPU
            )
        if self.scheme.cpu_stride:
            from repro.cpu.stride import StrideCpuScheduler

            self.cpusched = StrideCpuScheduler(
                self.config.ncpus, self.scheme, cpu_entitlements
            )
        else:
            partition = (
                CpuPartition(self.config.ncpus, cpu_entitlements)
                if self.scheme.cpu_partitioned
                else None
            )
            self.cpusched = CpuScheduler(self.config.ncpus, self.scheme, partition)

        # Memory entitlements; without per-SPU limits (SMP) the cap is
        # the whole machine.
        pool = self.memory.user_pool()
        for spu_id, pages in self.config.contract.entitlements(pool, users).items():
            levels = self.registry.get(spu_id).memory()
            levels.set_entitled(pages)
            if not self.scheme.mem_limits:
                levels.set_allowed(self.config.total_pages)
        if self.scheme.mem_limits:
            self.memdaemon = MemorySharingDaemon(
                self.engine, self.memory, self.config.contract
            )
            self.memdaemon.start()
        if self.scheme.params.proactive_pageout:
            self.pageout = PageoutDaemon(
                self.engine,
                self.memory,
                steal_from=lambda spu_id: self._steal_page(self.registry.get(spu_id)),
                period=self.scheme.params.pageout_period,
            )
            self.pageout.start()

        self.fs.start_daemons()
        # The tick opts into idle fast-forward: when the machine is
        # quiescent (engine idle probe below), _skip_ticks replays the
        # only state k idle ticks change — the time-partition rotation.
        self._tick_timer = self.engine.every(
            self.scheme.params.clock_tick, self._tick, skip_fn=self._skip_ticks
        )
        self.engine.set_idle_probe(self._quiescent)
        self._booted = True

        # Imported here, not at module top: the sanitizer needs the
        # Kernel type for its checks, so a top-level import would cycle.
        from repro.sanitizer import maybe_install

        self.sanitizer = maybe_install(self)

    # --- process lifecycle --------------------------------------------------------

    def spawn(
        self,
        behavior: Behavior,
        spu: SPU,
        name: str = "",
        parent: Optional[int] = None,
        base_priority: int = 20,
    ) -> Process:
        """Create a process in ``spu`` and start interpreting it."""
        if not self._booted:
            raise KernelError("boot() before spawning processes")
        pid = next(self._next_pid)
        proc = Process(
            pid,
            spu.spu_id,
            behavior,
            name=name,
            base_priority=base_priority,
            created=self.engine.now,
            parent=parent,
        )
        self.processes[pid] = proc
        self.registry.assign(pid, spu)
        proc._ws_rng = self.engine.fork_rng(f"ws-{pid}")  # type: ignore[attr-defined]
        if self.tracer.enabled:
            self.tracer.emit(self.engine.now, "proc", "spawn",
                             pid=pid, name=proc.name, spu=spu.spu_id)
        self._advance(proc)
        return proc

    def spawn_gang(
        self,
        behaviors: List[Behavior],
        spu: SPU,
        name: str = "",
        base_priority: int = 20,
    ) -> List[Process]:
        """Spawn co-scheduled processes (see :mod:`repro.kernel.gang`).

        Installing the first gang activates the scheduler's eligibility
        filter; non-gang processes are unaffected by it.
        """
        from repro.kernel.gang import Gang

        gang = Gang(name=name)
        procs = []
        for i, behavior in enumerate(behaviors):
            proc = Process(
                next(self._next_pid),
                spu.spu_id,
                behavior,
                name=f"{gang.name}.{i}",
                base_priority=base_priority,
                created=self.engine.now,
            )
            gang.add(proc)
            self.processes[proc.pid] = proc
            self.registry.assign(proc.pid, spu)
            proc._ws_rng = self.engine.fork_rng(f"ws-{proc.pid}")  # type: ignore[attr-defined]
        if self._sched().eligibility is None:
            self._sched().eligibility = self._gang_eligible
        # Start interpreting only after every member exists, so the
        # gang is never observed half-constructed.
        for proc in gang.members:
            procs.append(proc)
            self._advance(proc)
        # The first members enqueued while the gang looked incomplete;
        # now that it is whole, give every idle CPU a chance.
        for cpu in self._sched().processors:
            if cpu.idle:
                self._dispatch(cpu)
        return procs

    def _gang_eligible(self, proc: Process, now: int) -> bool:
        """All-or-nothing gang dispatch (Ousterhout-style).

        A gang member may be dispatched only when no member is blocked
        and the gang can actually start as a unit: either members are
        already running, or enough CPUs sit idle to place every
        runnable member at once.  (With spin barriers, a partial gang
        burns CPU in busy-waits — exactly what this gate prevents.)
        """
        gang = getattr(proc, "gang", None)
        if gang is None:
            return True
        if not gang.schedulable():
            return False
        sched = self._sched()
        running = sum(
            1 for m in gang.members if m.state is ProcessState.RUNNING
        )
        if running:
            return True
        runnable = sum(
            1 for m in gang.members if m.state is ProcessState.RUNNABLE
        )
        if self.scheme.cpu_partitioned and sched.partition is not None:
            cpus = [
                c for c in sched.processors
                if sched.home_of(c) == proc.spu_id
            ]
            # With lending, foreign idle CPUs can host overflow members.
            if self.scheme.cpu_lending:
                cpus = sched.processors
        else:
            cpus = sched.processors
        online = [c for c in cpus if c.online]
        idle = sum(1 for c in online if c.idle)
        return bool(online) and idle >= min(runnable, len(online))

    def _gang_boost(self) -> None:
        """Anti-starvation: clear space for a gang stuck behind other
        work (the time-slot rotation of classical gang scheduling,
        approximated at clock-tick granularity)."""
        sched = self._sched()
        seen = set()
        for proc in list(self.processes.values()):
            gang = getattr(proc, "gang", None)
            if gang is None or gang.gang_id in seen:
                continue
            seen.add(gang.gang_id)
            if not gang.schedulable():
                continue
            members = [
                m for m in gang.members if m.state is ProcessState.RUNNABLE
            ]
            if not members or any(
                m.state is ProcessState.RUNNING for m in gang.members
            ):
                continue
            waited = self.engine.now - max(m.runnable_since for m in members)
            if waited < self.scheme.params.time_slice:
                continue
            # Preempt enough non-gang work to fit the whole gang, then
            # dispatch; the gang's rested priorities win the CPUs.
            needed = min(len(members), len(sched.processors))
            idle = sum(1 for c in sched.processors if c.idle)
            victims = [
                c for c in sched.processors
                if c.running is not None
                and getattr(c.running, "gang", None) is None
            ]
            for cpu in victims[: max(0, needed - idle)]:
                self._preempt(cpu, dispatch=False)
            for cpu in sched.processors:
                if cpu.idle:
                    self._dispatch(cpu)

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run the simulation (to quiescence, or to ``until``)."""
        executed = self.engine.run(until=until, max_events=max_events)
        if self.sanitizer is not None:
            # One last full pass: with a check stride > 1 the final
            # events of the run may otherwise go unchecked.
            self.sanitizer.check()
        return executed

    def jobs_done(self) -> bool:
        return all(p.state is ProcessState.EXITED for p in self.processes.values())

    def cpu_utilization(self) -> float:
        """Machine-wide busy fraction since boot.

        The denominator is the capacity *integral* — CPU-microseconds
        the machine actually offered — so hot-removing processors
        mid-run does not deflate utilization for the time before the
        fault.
        """
        capacity = self.cpu_capacity_us()
        if capacity == 0:
            return 0.0
        busy = sum(self.cpu_busy_us.values())
        return busy / capacity

    # --- hardware faults (driven by repro.faults) -------------------------

    def cpu_capacity_us(self, now: Optional[int] = None) -> int:
        """CPU-microseconds of capacity offered since boot.

        Piecewise-constant integral of the online-CPU count over time;
        equal to ``now * ncpus`` on a machine that never faulted.
        """
        if now is None:
            now = self.engine.now
        return (
            self._capacity_integral_us
            + (now - self._capacity_since) * self._n_online_cpus
        )

    def _note_capacity_change(self, n_online: int) -> None:
        now = self.engine.now
        self._capacity_integral_us += (
            (now - self._capacity_since) * self._n_online_cpus
        )
        self._capacity_since = now
        self._n_online_cpus = n_online

    def remove_cpu(self, cpu_id: Optional[int] = None) -> int:
        """Hot-remove a processor (hardware fault).

        The victim's running process is preempted back to its run
        queue, the CPU partition is rebuilt over the survivors, and the
        contract renegotiates every SPU's entitlement over the smaller
        machine.  Returns the removed CPU id.  The last online CPU
        cannot be removed — the machine would halt.
        """
        sched = self._sched()
        online = sched.online_processors()
        if len(online) <= 1:
            raise KernelError("cannot remove the last online CPU")
        if cpu_id is None:
            cpu = online[-1]
        else:
            cpu = sched.processors[cpu_id] if 0 <= cpu_id < len(sched.processors) else None
            if cpu is None or not cpu.online:
                raise KernelError(f"no online cpu {cpu_id}")
        # Offline first: _preempt makes the victim runnable again, and
        # a still-online CPU would look idle and instantly re-dispatch
        # onto the processor being pulled.
        cpu.online = False
        if cpu.running is not None:
            self._preempt(cpu, dispatch=False)
        self._note_capacity_change(len(online) - 1)
        self.cpus_removed += 1
        if self.tracer.enabled:
            self.tracer.emit(self.engine.now, "fault", "cpu_remove",
                             cpu=cpu.cpu_id, online=len(online) - 1)
        self.rebalance_spus()
        return cpu.cpu_id

    def add_cpu(self, cpu_id: Optional[int] = None) -> int:
        """Bring an offlined processor back (hot-add / repair)."""
        sched = self._sched()
        offline = [c for c in sched.processors if not c.online]
        if not offline:
            raise KernelError("no offline CPU to add")
        if cpu_id is None:
            cpu = offline[0]
        else:
            matches = [c for c in offline if c.cpu_id == cpu_id]
            if not matches:
                raise KernelError(f"cpu {cpu_id} is not offline")
            cpu = matches[0]
        cpu.online = True
        self._note_capacity_change(len(sched.online_processors()))
        self.cpus_added += 1
        if self.tracer.enabled:
            self.tracer.emit(self.engine.now, "fault", "cpu_add", cpu=cpu.cpu_id)
        self.rebalance_spus()
        self._dispatch(cpu)
        return cpu.cpu_id

    def remove_memory(self, pages: int) -> int:
        """Lose a memory module: shrink the page pool by ``pages``.

        Free pages are taken first; past that, in-use pages are evicted
        through the normal stealing path (the owning SPU pays the
        eviction, exactly as for a policy revocation).  Entitlements
        are renegotiated over the surviving pool.  Returns the number
        of pages actually removed.
        """
        removed = self.memory.decommission(pages, evict=self._evict_for_fault)
        if self.tracer.enabled:
            self.tracer.emit(self.engine.now, "fault", "mem_remove",
                             pages=removed, requested=pages)
        if self._booted:
            self.rebalance_spus()
        return removed

    def _evict_for_fault(self) -> bool:
        """Free one in-use page for :meth:`remove_memory`."""
        users = [
            s for s in self.registry.active_user_spus() if s.memory().used > 0
        ]
        victims = sorted(users, key=lambda s: (-s.memory().used, s.spu_id)) or [
            s for s in (self.registry.shared_spu,) if s.memory().used > 0
        ]
        for victim in victims:
            if self._steal_page(victim):
                return True
        return False

    def fail_disk(self, disk_id: int) -> int:
        """A drive dies permanently; fail over to a surviving mirror.

        The dead drive's queued and in-flight requests are resubmitted
        to the first surviving drive (sectors remapped if the target is
        smaller), its filesystem volume is retargeted there, and future
        submissions follow via the redirect table.  Returns the
        surviving drive's id.  With no survivor left, raises — total
        storage loss is outside the degradation model.
        """
        if not 0 <= disk_id < len(self.drives):
            raise KernelError(f"no disk {disk_id}")
        dead = self.drives[disk_id]
        if not dead.alive:
            return self._disk_redirect.get(disk_id, disk_id)
        survivors = [
            i for i, d in enumerate(self.drives) if d.alive and i != disk_id
        ]
        if not survivors:
            raise KernelError("no surviving drive to fail over to")
        target = survivors[0]
        orphans = dead.fail_permanently()
        self.disks_failed.append(disk_id)
        self._disk_redirect[disk_id] = target
        # Re-point any earlier failovers that landed on this drive.
        for earlier, dest in list(self._disk_redirect.items()):
            if dest == disk_id:
                self._disk_redirect[earlier] = target
        self.fs.retarget_drive(disk_id, target)
        if self.tracer.enabled:
            self.tracer.emit(self.engine.now, "fault", "disk_fail",
                             disk=disk_id, failover=target,
                             orphans=len(orphans))
        for request in orphans:
            self._reroute_failed(disk_id, request)
        return target

    def _reroute_failed(self, dead_id: int, request: DiskRequest) -> None:
        """Resubmit a dead drive's request to its failover target.

        The original enqueue time rides along, so wait/response
        metrics cover the whole ordeal; sectors are remapped into the
        target's geometry when it is smaller.
        """
        target_id = self._disk_redirect.get(dead_id)
        while target_id is not None and not self.drives[target_id].alive:
            target_id = self._disk_redirect.get(target_id)
        if target_id is None:
            # Nowhere to go: the request is lost.
            request.failed = True
            if request.enqueue_time < 0:
                request.enqueue_time = self.engine.now
            if request.start_time < 0:
                request.start_time = self.engine.now
            request.finish_time = self.engine.now
            self.drives[dead_id].stats.record(request)
            if request.on_complete is not None:
                request.on_complete(request)  # simlint: dynamic=callback-field
            return
        target = self.drives[target_id]
        limit = target.geometry.total_sectors
        if request.sector + request.nsectors > limit:
            request.sector = request.sector % max(1, limit - request.nsectors)
        request.attempts = 0
        target.submit(request)

    def _live_mount(self, mount: int) -> int:
        """Follow disk failovers to the drive actually serving a mount."""
        seen = set()
        while mount in self._disk_redirect and mount not in seen:
            seen.add(mount)
            mount = self._disk_redirect[mount]
        return mount

    # --- the syscall interpreter -----------------------------------------------

    def _advance(self, proc: Process, value: object = None) -> None:
        """Drive the behaviour generator until it blocks or exits."""
        while True:
            try:
                if value is None or not hasattr(proc.behavior, "send"):
                    # next() also accepts plain (non-generator)
                    # iterators, e.g. a list of ops; those cannot
                    # receive values (Spawn results are dropped).
                    op = next(proc.behavior)
                else:
                    op = proc.behavior.send(value)
            except StopIteration:
                self._exit(proc)
                return
            value = None

            if isinstance(op, Compute):
                proc.pending_compute = op.duration_us
                self._make_runnable(proc)
                return
            if isinstance(op, SetWorkingSet):
                self._set_working_set(proc, op)
                continue
            if isinstance(op, Checkpoint):
                proc.checkpoints.append((op.label, self.engine.now))
                continue
            if isinstance(op, (ReadFile, WriteFile, WriteMetadata)):
                proc.state = ProcessState.BLOCKED
                self._admit_io(proc, op, self.engine.now, throttled=False)
                return
            if isinstance(op, SendNetwork):
                try:
                    link = self.links[op.nic]
                except IndexError:
                    raise KernelError(f"no NIC {op.nic}") from None
                proc.state = ProcessState.BLOCKED
                link.send(
                    proc.spu_id, op.nbytes,
                    on_complete=partial(self._resume, proc), pid=proc.pid,
                )
                return
            if isinstance(op, Sleep):
                proc.state = ProcessState.BLOCKED
                self.engine.call_after(op.duration_us, self._resume, proc)
                return
            if isinstance(op, Spawn):
                spu = self.registry.get(proc.spu_id)
                if not self._admit_spawn(spu):
                    # Per-SPU process limit: the spawn fails (-1) after
                    # a forced backoff, charged to the asking process.
                    self.spawn_denials[spu.spu_id] = (
                        self.spawn_denials.get(spu.spu_id, 0) + 1
                    )
                    if self.tracer.enabled:
                        self.tracer.emit(self.engine.now, "proc", "spawn_denied",
                                         pid=proc.pid, spu=spu.spu_id)
                    proc.state = ProcessState.BLOCKED
                    self.engine.call_after(
                        max(1, self.overload.spawn_backoff_us),
                        self._resume_value, proc, -1,
                    )
                    return
                child = self.spawn(
                    op.behavior,
                    spu,
                    name=op.name,
                    parent=proc.pid,
                )
                proc.children.add(child.pid)
                value = child.pid
                continue
            if isinstance(op, WaitChildren):
                if self._children_done(proc):
                    continue
                proc.waiting_for_children = True
                proc.state = ProcessState.BLOCKED
                return
            if isinstance(op, BarrierWait):
                if op.spin:
                    self._spin_barrier(proc, op)
                else:
                    proc.state = ProcessState.BLOCKED
                    released = op.barrier.arrive(partial(self._resume, proc))
                    for resume in released:
                        resume()  # simlint: dynamic=continuation
                return
            if isinstance(op, Acquire):
                if op.lock.acquire(proc, op.shared, partial(self._resume, proc)):
                    continue
                proc.state = ProcessState.BLOCKED
                return
            if isinstance(op, Release):
                for grant in op.lock.release(proc):
                    grant()  # simlint: dynamic=continuation
                continue
            raise KernelError(f"process {proc.pid} yielded unknown op {op!r}")

    def _resume(self, proc: Process) -> None:
        """A blocking syscall finished; continue the generator.

        A process killed while blocked (OOM policy, watchdog
        escalation) may still have completions in flight; they land
        here and are dropped.
        """
        if not proc.alive:
            return
        self._advance(proc)

    def _resume_value(self, proc: Process, value: object) -> None:
        """Continue a blocked generator, sending it a syscall result."""
        if not proc.alive:
            return
        self._advance(proc, value)

    # --- overload hardening (see repro.kernel.overload) --------------------

    def _admit_spawn(self, spu: SPU) -> bool:
        """Whether the per-SPU process limit admits one more process.

        Only the ``Spawn`` *syscall* is limited; :meth:`spawn` from
        experiment setup code is administrative and always admitted.
        """
        limit = self.overload.max_procs_per_spu
        if limit is None or not spu.is_user:
            return True
        if spu.spu_id in self._throttled_spus:
            limit = self.overload.clamped(limit)
        return len(spu.pids) < limit

    def _io_limit(self, spu_id: int) -> Optional[int]:
        limit = self.overload.max_inflight_io_per_spu
        if limit is None or not self.registry.get(spu_id).is_user:
            return None
        if spu_id in self._throttled_spus:
            return self.overload.clamped(limit)
        return limit

    def _admit_io(
        self, proc: Process, op: object, issued_at: int, throttled: bool
    ) -> None:
        """Syscall-level admission control on the file-I/O path.

        An SPU over its in-flight budget waits in a backpressure loop
        (re-trying every ``io_retry_us``); a syscall still waiting at
        its deadline fails — the behaviour resumes with ``-1`` instead
        of queueing kernel work without bound.
        """
        if not proc.alive:
            return
        spu_id = proc.spu_id
        limit = self._io_limit(spu_id)
        if limit is not None and self._io_inflight.get(spu_id, 0) >= limit:
            if self.engine.now - issued_at >= self.overload.io_deadline_us:
                self.io_rejected[spu_id] = self.io_rejected.get(spu_id, 0) + 1
                if self.tracer.enabled:
                    self.tracer.emit(self.engine.now, "io", "rejected",
                                     pid=proc.pid, spu=spu_id)
                self._resume_value(proc, -1)
                return
            if not throttled:
                self.io_throttled[spu_id] = self.io_throttled.get(spu_id, 0) + 1
            self.engine.call_after(
                self.overload.io_retry_us, self._admit_io, proc, op, issued_at, True
            )
            return
        self._io_inflight[spu_id] = self._io_inflight.get(spu_id, 0) + 1
        done = partial(self._io_done, proc, spu_id)
        if isinstance(op, ReadFile):
            self.fs.read(proc.pid, spu_id, op.file, op.offset, op.nbytes, done)
        elif isinstance(op, WriteFile):
            self.fs.write(proc.pid, spu_id, op.file, op.offset, op.nbytes, done)
        else:
            assert isinstance(op, WriteMetadata)
            self.fs.write_metadata(proc.pid, spu_id, op.file, done)

    def _io_done(self, proc: Process, spu_id: int) -> None:
        self._io_inflight[spu_id] = max(0, self._io_inflight.get(spu_id, 0) - 1)
        self._resume(proc)

    def throttle_spu(self, spu_id: int) -> None:
        """Escalation step 2 (see OverloadGuard): halve the SPU's
        spawn and file-I/O admission limits until unthrottled."""
        self._throttled_spus.add(spu_id)

    def unthrottle_spu(self, spu_id: int) -> None:
        """Lift an escalation throttle.  Idempotent."""
        self._throttled_spus.discard(spu_id)

    def spu_throttled(self, spu_id: int) -> bool:
        return spu_id in self._throttled_spus

    def kill(self, proc: Process, reason: str = "killed") -> None:
        """Forcibly terminate one process (OOM policy, escalation).

        The CPU slice (if any) is cancelled and charged, scheduler
        queue state is cleaned up, the behaviour generator is closed,
        and the ordinary exit path releases the process's pages and
        wakes a waiting parent.  Completions still in flight for the
        dead process are dropped at :meth:`_resume`.  Only the victim
        pays; its SPU's other processes and every other SPU continue
        untouched.
        """
        if not proc.alive:
            return
        proc.kill_reason = reason
        sched = self._sched()
        cpu = proc.cpu
        if cpu is not None:
            if proc.slice_handle is not None:
                proc.slice_handle.cancel()
                proc.slice_handle = None
            self._charge_slice(proc)
            sched.release(cpu)
            proc.cpu = None
        elif proc.state is ProcessState.RUNNABLE:
            sched.dequeue(proc)
        proc.spinning = False
        proc.pending_compute = 0
        try:
            proc.behavior.close()
        except Exception:  # pragma: no cover - misbehaving generator
            pass
        if self.tracer.enabled:
            self.tracer.emit(self.engine.now, "proc", "kill",
                             pid=proc.pid, spu=proc.spu_id, reason=reason)
        self._exit(proc)
        if cpu is not None:
            self._dispatch(cpu)

    def oom_kill(self, spu_id: int) -> Optional[Process]:
        """SPU-charged OOM policy: kill the largest memory offender
        *inside the offending SPU only*.

        The victim is the SPU's live process with the biggest memory
        footprint (resident + swapped pages; CPU time and pid break
        ties deterministically).  Returns the victim, or ``None`` when
        the SPU has no live processes.
        """
        procs = [
            p for p in self.processes.values()
            if p.spu_id == spu_id and p.alive
        ]
        if not procs:
            return None
        victim = max(
            procs,
            key=lambda p: (p.resident + p.paged_out, p.cpu_time_us, p.pid),
        )
        self.oom_kills[spu_id] = self.oom_kills.get(spu_id, 0) + 1
        self.kill(victim, reason="oom")
        return victim

    # --- spin barriers ---------------------------------------------------------

    #: Sentinel compute length for a busy-wait (cancelled when the
    #: barrier trips; never runs to completion).
    _SPIN_COMPUTE = 10**12

    def _spin_barrier(self, proc: Process, op: BarrierWait) -> None:
        """Busy-wait at the barrier: the process keeps consuming CPU."""
        released = op.barrier.arrive(partial(self._end_spin, proc))
        if released:
            # This arrival tripped the barrier: fire every waiter's
            # release (including this process's own).
            proc.spinning = True
            proc.pending_compute = self._SPIN_COMPUTE
            for resume in released:
                resume()  # simlint: dynamic=continuation
            return
        proc.spinning = True
        proc.pending_compute = self._SPIN_COMPUTE
        self._make_runnable(proc)

    def _end_spin(self, proc: Process) -> None:
        """The barrier tripped; stop the busy-wait wherever it is."""
        proc.spinning = False
        if proc.cpu is not None:
            # Mid-spin on a CPU: cancel the slice and move on.
            cpu = proc.cpu
            if proc.slice_handle is not None:
                proc.slice_handle.cancel()
                proc.slice_handle = None
            self._charge_slice(proc)
            proc.pending_compute = 0
            self._sched().release(cpu)
            proc.cpu = None
            self._advance(proc)
            self._dispatch(cpu)
            return
        proc.pending_compute = 0
        if proc.state is ProcessState.RUNNABLE:
            self._sched().dequeue(proc)
        # Otherwise this is the arrival that tripped the barrier,
        # still in the interpreter; just continue it.
        self._advance(proc)

    def _set_working_set(self, proc: Process, op: SetWorkingSet) -> None:
        proc.working_set = WorkingSetModel(
            op.pages,
            proc._ws_rng,  # type: ignore[attr-defined]
            touches_per_ms=op.touches_per_ms,
            fault_cluster_pages=op.fault_cluster_pages,
        )
        # Shrinking releases the excess immediately.
        if proc.resident > op.pages:
            self.memory.free_n(proc.spu_id, proc.resident - op.pages)
            proc.resident = op.pages
        # Pages on swap beyond the new working set will never be
        # touched again.
        proc.paged_out = min(proc.paged_out, max(0, op.pages - proc.resident))

    def _children_done(self, proc: Process) -> bool:
        return all(
            self.processes[pid].state is ProcessState.EXITED
            for pid in proc.children
        )

    def _exit(self, proc: Process) -> None:
        proc.state = ProcessState.EXITED
        proc.finished = self.engine.now
        if self.tracer.enabled:
            self.tracer.emit(self.engine.now, "proc", "exit",
                             pid=proc.pid, response_us=proc.response_us,
                             cpu_us=proc.cpu_time_us, faults=proc.fault_count)
        self.memory.free_n(proc.spu_id, proc.resident)
        proc.resident = 0
        self.registry.remove(proc.pid)
        if proc.parent is not None:
            parent = self.processes[proc.parent]
            if parent.waiting_for_children and self._children_done(parent):
                parent.waiting_for_children = False
                self._advance(parent)

    # --- CPU dispatch ---------------------------------------------------------

    def _make_runnable(self, proc: Process) -> None:
        proc.state = ProcessState.RUNNABLE
        now = self.engine.now
        proc.runnable_since = now
        sched = self._sched()
        sched.enqueue(proc)
        cpu = sched.find_cpu_for(proc, now)
        if cpu is not None:
            self._dispatch(cpu)
            return
        if self.scheme.params.revocation_mode == "ipi":
            self._send_revocation_ipi(proc)
        self._arm_dispatch_retry(proc)

    def _arm_dispatch_retry(self, proc: Process) -> None:
        """Keep the simulation alive for a process whose only route to
        a CPU is the tick-driven home rotation of a time-shared CPU.

        The rotation itself runs off daemon clock ticks, which do not
        keep :meth:`Engine.run` alive; without this non-daemon retry a
        lone process waiting for its rotation slot would strand when
        the rest of the event queue drained.
        """
        sched = self._sched()
        if sched.partition is None or not sched.partition.time_shared:
            return
        if proc.dispatch_retry_pending:
            return
        proc.dispatch_retry_pending = True

        def retry() -> None:
            proc.dispatch_retry_pending = False
            if proc.state is not ProcessState.RUNNABLE:
                return
            cpu = sched.find_cpu_for(proc, self.engine.now)
            if cpu is not None:
                self._dispatch(cpu)
            if proc.state is ProcessState.RUNNABLE:
                self._arm_dispatch_retry(proc)

        self.engine.call_after(self.scheme.params.clock_tick, retry)

    def _send_revocation_ipi(self, proc: Process) -> None:
        """Immediate loan revocation for a newly runnable home process.

        With tick-mode revocation (the paper's implementation) the
        process waits up to one clock tick; IPI mode claws a loaned
        home CPU back right away, for interactive response-time
        guarantees.
        """
        sched = self._sched()
        if not (self.scheme.cpu_partitioned and self.scheme.cpu_lending):
            return
        loaned = [
            c for c in sched.processors
            if c.on_loan and sched.home_of(c) == proc.spu_id
        ]
        if not loaned:
            return
        target = loaned[0]

        def deliver() -> None:
            # The world may have changed while the IPI was in flight.
            if target.on_loan and sched.home_of(target) == proc.spu_id \
                    and sched.waiting(proc.spu_id):
                sched.loans_revoked += 1
                self._preempt(target)

        self.engine.call_after(self.scheme.params.ipi_cost, deliver)

    def _sched(self) -> CpuScheduler:
        if self.cpusched is None:
            raise KernelError("kernel not booted")
        return self.cpusched

    def _dispatch(self, cpu: Processor) -> None:
        if not cpu.idle:
            return
        proc = self._sched().pick(cpu, self.engine.now)
        if proc is None:
            return
        if self.tracer.enabled:
            self.tracer.emit(self.engine.now, "sched", "dispatch",
                             cpu=cpu.cpu_id, pid=proc.pid, loan=cpu.on_loan)
        self._begin_slice(cpu, proc)

    def _begin_slice(self, cpu: Processor, proc: Process) -> None:
        proc.state = ProcessState.RUNNING
        proc.cpu = cpu
        params = self.scheme.params
        # Cache-affinity warm-up when moving to a different CPU; no
        # compute progress during it (Section 3.1's "cache pollution").
        warmup = 0
        last_cpu_id = proc.last_cpu_id
        if (
            params.migration_cost
            and last_cpu_id is not None
            and last_cpu_id != cpu.cpu_id
        ):
            warmup = params.migration_cost
        proc.slice_warmup = warmup
        proc.last_cpu_id = cpu.cpu_id
        length, reason = proc.pending_compute, "done"
        quantum = params.time_slice
        if quantum < length:
            length, reason = quantum, "slice"
        working_set = proc.working_set
        if working_set is not None and not proc.spinning:
            to_fault = working_set.time_to_next_fault(proc.resident)
            if to_fault is not None and to_fault < length:
                length, reason = to_fault, "fault"
        engine = self.engine
        proc.slice_started = engine.now
        proc.slice_handle = engine.after(
            max(1, warmup + length), self._end_slice, cpu, proc, reason
        )

    def _end_slice(self, cpu: Processor, proc: Process, reason: str) -> None:
        proc.slice_handle = None
        self._charge_slice(proc)
        self._sched().release(cpu)
        proc.cpu = None
        if reason == "done":
            self._advance(proc)
        elif reason == "fault":
            self._page_fault(proc)
        else:
            self._make_runnable(proc)
        self._dispatch(cpu)

    def _charge_slice(self, proc: Process) -> None:
        now = self.engine.now
        elapsed = now - proc.slice_started
        # The warm-up portion burns CPU time without making progress.
        progress = max(0, elapsed - proc.slice_warmup)
        proc.pending_compute = max(0, proc.pending_compute - progress)
        proc.cpu_time_us += elapsed
        cpu = proc.cpu
        if cpu is not None:
            busy = self.cpu_busy_us
            busy[cpu.cpu_id] = busy.get(cpu.cpu_id, 0) + elapsed
        self.context_switches += 1
        proc.priority.charge(elapsed, now)
        self.cpu_account.charge(proc.spu_id, elapsed)
        self._sched().on_usage(proc.spu_id, elapsed)

    def _preempt(self, cpu: Processor, dispatch: bool = True) -> None:
        """Take the CPU away (loan revocation, rotation, gang boost)."""
        proc = cpu.running
        if proc is None:
            return
        if self.tracer.enabled:
            self.tracer.emit(self.engine.now, "sched", "preempt",
                             cpu=cpu.cpu_id, pid=proc.pid, loan=cpu.on_loan)
        if cpu.on_loan and self.scheme.params.loan_holddown:
            cpu.no_loan_until = self.engine.now + self.scheme.params.loan_holddown
        if proc.slice_handle is not None:
            proc.slice_handle.cancel()
            proc.slice_handle = None
        self._charge_slice(proc)
        self._sched().release(cpu)
        proc.cpu = None
        self._make_runnable(proc)
        if dispatch:
            self._dispatch(cpu)

    def _tick(self) -> None:
        """The 10 ms clock tick: rotation, loan revocation, dispatch."""
        sched = self._sched()
        for cpu in sched.rotate_time_shared():
            if cpu.running is None:
                continue
            new_home = sched.home_of(cpu)
            if new_home == cpu.running.spu_id:
                continue
            # With lending (PIso/SMP) the slot is only reclaimed when
            # the new owner has waiting work — otherwise the running
            # process borrows the slack.  Without lending (Quo) the
            # quota is strict: the slot is vacated even if it will sit
            # idle.
            if not self.scheme.cpu_lending:
                self._preempt(cpu)
            elif new_home is not None and sched.waiting(new_home):
                self._preempt(cpu)
        for cpu in sched.revocations():
            self._preempt(cpu)
        if sched.eligibility is not None:
            self._gang_boost()
        for cpu in sched.processors:
            if cpu.idle:
                self._dispatch(cpu)

    def _quiescent(self) -> bool:
        """True when a clock tick could change nothing but the rotation.

        With no process running or runnable, :meth:`_tick` reduces to
        ``partition.tick()``: the rotation preempts skip every CPU
        (nothing is running), :meth:`CpuScheduler.revocations` returns
        [] without touching its counters (no queue has waiters, no CPU
        is on loan), the gang boost finds no runnable members, and
        dispatching idle CPUs picks None with no side effects.  This is
        the engine's idle probe — the license to fast-forward tick runs.
        """
        sched = self.cpusched
        if sched is None:
            return False
        for cpu in sched.processors:
            if cpu.running is not None:
                return False
        return sched.waiting() == 0

    def _skip_ticks(self, k: int) -> None:
        """Replay the state changes of ``k`` quiescent ticks at once.

        Under :meth:`_quiescent` the only mutation a tick makes is the
        time-partition rotation's credit arithmetic (which is
        independent of the clock), so k elided ticks are exactly k
        rotation advances.
        """
        sched = self.cpusched
        partition = sched.partition if sched is not None else None
        if partition is not None and partition.time_shared:
            for _ in range(k):
                partition.tick()

    # --- demand paging -----------------------------------------------------------

    def _page_fault(self, proc: Process) -> None:
        """Service a fault: get pages (stealing if needed), then either
        zero-fill (first touch, no I/O) or page in from swap.

        Only pages previously stolen from the process live on swap; a
        growing working set is satisfied by zero-filled pages at a
        small fixed cost.  This distinction is what makes memory
        pressure — not working-set size — the thing that generates
        paging I/O.
        """
        proc.state = ProcessState.BLOCKED
        proc.fault_count += 1
        if self.tracer.enabled:
            self.tracer.emit(self.engine.now, "mem", "fault",
                             pid=proc.pid, resident=proc.resident,
                             paged_out=proc.paged_out)
        assert proc.working_set is not None
        want = proc.working_set.pages_per_fault(proc.resident)
        # Bulk-grant what fits outright (no denial bookkeeping), then
        # fall back to the stealing path page by page; its first
        # failing try_allocate records the denial the per-page loop
        # would have recorded.
        got = self.memory.try_allocate_n(proc.spu_id, want)
        while got < want:
            if self._allocate_page(proc.spu_id):
                got += 1
            else:
                break
        if got == 0:
            # Complete allocation failure: not one page even after
            # stealing.  A sustained streak in one SPU means its fault
            # path can no longer make progress — the OOM policy kills
            # the largest offender inside that SPU (possibly this very
            # process) instead of letting the whole SPU livelock.
            streak = self._oom_pressure.get(proc.spu_id, 0) + 1
            self._oom_pressure[proc.spu_id] = streak
            if self.overload.oom_failure_streak and (
                streak >= self.overload.oom_failure_streak
            ):
                self._oom_pressure[proc.spu_id] = 0
                self.oom_kill(proc.spu_id)
                if not proc.alive:
                    return
        else:
            self._oom_pressure[proc.spu_id] = 0
        swapped = min(got, proc.paged_out) if got else min(1, proc.paged_out)
        if swapped == 0:
            # Zero-fill fault: a fixed kernel cost per page, no disk.
            self.engine.call_after(
                max(1, got) * self.ZERO_FILL_US_PER_PAGE,
                self._fault_done, proc, got, 0,
            )
            return
        mount = self._live_mount(self._swap_mount.get(proc.spu_id, 0))
        drive = self.drives[mount]
        span = max(1, swapped) * SECTORS_PER_PAGE
        base = self._swap_base[mount]
        sector = base + self._swap_rng.randrange(
            max(1, self._swap_sectors[mount] - span)
        )
        drive.submit(
            DiskRequest(
                spu_id=proc.spu_id,
                op=DiskOp.READ,
                sector=sector,
                nsectors=span,
                on_complete=partial(self._swap_in_done, proc, got, swapped),
                pid=proc.pid,
            )
        )

    #: Kernel cost of zero-filling one freshly allocated page.
    ZERO_FILL_US_PER_PAGE = 40

    def _fault_done(self, proc: Process, got: int, swapped: int) -> None:
        proc.resident += got
        proc.paged_out = max(0, proc.paged_out - swapped)
        self._make_runnable(proc)

    def _swap_in_done(
        self, proc: Process, got: int, swapped: int, request: DiskRequest
    ) -> None:
        """A page-in finished; a failed read degrades to zero-fill.

        Retries and the deadline are exhausted inside the drive; the
        lost pages are refilled with zeroes (the data loss is counted
        in :attr:`swap_io_errors`) so the process can keep running.
        """
        if request.failed:
            self.swap_io_errors += 1
        self._fault_done(proc, got, swapped)

    def _allocate_page(self, spu_id: int) -> bool:
        """Allocate one page, stealing a victim page if necessary."""
        if self.memory.try_allocate(spu_id):
            return True
        victim = self.memory.victim_spu(spu_id)
        if victim is not None and self._steal_page(victim):
            return self.memory.try_allocate(spu_id)
        return False

    def _steal_page(self, victim: SPU) -> bool:
        """Free one of the victim SPU's pages.

        Cheapest first: a clean buffer-cache block; then an anonymous
        page from the victim's biggest process (paying a swap write if
        dirty); as a last resort, kick writeback so a later attempt
        finds clean blocks.
        """
        if self.fs.cache.evict_clean(victim.spu_id):
            return True
        procs = [
            p
            for p in self.processes.values()
            if p.spu_id == victim.spu_id and p.alive and p.resident > 0
        ]
        if procs:
            target = max(procs, key=lambda p: (p.resident, p.pid))
            target.resident -= 1
            target.paged_out += 1
            self.memory.free(victim.spu_id)
            if self._dirty_rng.random() < self.dirty_eviction_fraction:
                self._swap_out(victim.spu_id)
            return True
        self.fs.writeback.flush_spu(victim.spu_id)
        return False

    def _swap_out(self, spu_id: int) -> None:
        """Asynchronously write one stolen dirty page to swap."""
        mount = self._live_mount(self._swap_mount.get(spu_id, 0))
        drive = self.drives[mount]
        base = self._swap_base[mount]
        sector = base + self._swap_rng.randrange(
            max(1, self._swap_sectors[mount] - SECTORS_PER_PAGE)
        )
        drive.submit(
            DiskRequest(
                spu_id=spu_id,
                op=DiskOp.WRITE,
                sector=sector,
                nsectors=SECTORS_PER_PAGE,
            )
        )
