"""The simulated process."""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional, Set

from repro.cpu.priorities import ProcessPriority
from repro.kernel.syscalls import Behavior
from repro.mem.workingset import WorkingSetModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.cpu.scheduler import Processor
    from repro.sim.engine import EventHandle


class ProcessState(enum.Enum):
    NEW = "new"
    RUNNABLE = "runnable"
    RUNNING = "running"
    BLOCKED = "blocked"
    EXITED = "exited"


class Process:
    """One process: a behaviour generator plus scheduling/memory state."""

    # Simulations create and churn thousands of processes; slots keep
    # them compact and attribute access cheap.  ``_ws_rng`` is assigned
    # by the kernel when the process first gets a working-set model.
    __slots__ = (
        "pid", "spu_id", "behavior", "name", "default_base_priority",
        "priority", "state", "parent", "children", "waiting_for_children",
        "pending_compute", "cpu", "slice_started", "slice_handle",
        "last_cpu_id", "slice_warmup", "working_set", "resident",
        "paged_out", "gang", "spinning", "runnable_since",
        "dispatch_retry_pending", "kill_reason", "created", "finished",
        "cpu_time_us", "fault_count", "checkpoints", "_ws_rng",
    )

    def __init__(
        self,
        pid: int,
        spu_id: int,
        behavior: Behavior,
        name: str = "",
        base_priority: int = 20,
        created: int = 0,
        parent: Optional[int] = None,
    ):
        self.pid = pid
        self.spu_id = spu_id
        self.behavior = behavior
        self.name = name or f"proc{pid}"
        self.default_base_priority = base_priority
        self.priority = ProcessPriority(base=base_priority, now=created)
        self.state = ProcessState.NEW
        self.parent = parent
        self.children: Set[int] = set()
        self.waiting_for_children = False

        # --- CPU execution state -------------------------------------------
        #: Remaining CPU time of the current Compute op.
        self.pending_compute = 0
        self.cpu: Optional["Processor"] = None
        self.slice_started = -1
        self.slice_handle: Optional["EventHandle"] = None
        #: CPU the process last ran on (for cache-affinity cost).
        self.last_cpu_id: Optional[int] = None
        #: Cache warm-up portion of the current slice; no compute
        #: progress is made during it.
        self.slice_warmup = 0

        # --- memory state -------------------------------------------------
        self.working_set: Optional[WorkingSetModel] = None
        #: Anonymous pages currently resident.
        self.resident = 0
        #: Working-set pages stolen from this process and sitting on
        #: swap; re-touching them needs a disk read (unlike first-touch
        #: zero-fill faults, which cost no I/O).
        self.paged_out = 0

        #: Gang this process belongs to, if co-scheduled (see
        #: repro.kernel.gang).
        self.gang = None
        #: Set while busy-waiting at a spin barrier.
        self.spinning = False
        #: When the process last became runnable (for gang anti-
        #: starvation aging).
        self.runnable_since = -1
        #: A live dispatch-retry event exists (time-shared CPUs only).
        self.dispatch_retry_pending = False

        #: Why the kernel forcibly terminated this process (``"oom"``,
        #: escalation), or None for a voluntary exit.
        self.kill_reason: Optional[str] = None

        # --- metrics -------------------------------------------------------
        self.created = created
        self.finished = -1
        self.cpu_time_us = 0
        self.fault_count = 0
        #: (label, time) markers recorded by Checkpoint ops.
        self.checkpoints: list = []

    # --- derived ---------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self.state is not ProcessState.EXITED

    @property
    def response_us(self) -> int:
        """Creation-to-exit wall time; valid only after exit."""
        if self.finished < 0:
            raise ValueError(f"process {self.pid} has not exited")
        return self.finished - self.created

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Process {self.pid} {self.name!r} spu={self.spu_id}"
            f" {self.state.value}>"
        )
