"""Gang (co-)scheduling support.

The paper notes that "accommodating gang-scheduled [Ous82] parallel
applications would require some modifications" to its space-partitioned
scheme.  This module supplies that modification: processes spawned as a
*gang* are only dispatched while every live member is either running or
ready to run, so barrier-synchronised members progress together instead
of being scattered across time slices (which stretches every barrier
phase to the slowest member's queueing luck).

Gangs never deadlock the machine: while a gang is ineligible its
members just wait in the queue, and non-gang work runs instead.  A
gang larger than its SPU's CPUs still runs — eligibility gates on
members being *ready*, not on all of them holding CPUs at once.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, List

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.process import Process

_gang_ids = itertools.count(1)


class Gang:
    """A set of processes that should be co-scheduled."""

    __slots__ = ("gang_id", "name", "members")

    def __init__(self, name: str = ""):
        self.gang_id = next(_gang_ids)
        self.name = name or f"gang{self.gang_id}"
        self.members: List["Process"] = []

    def add(self, proc: "Process") -> None:
        self.members.append(proc)
        proc.gang = self

    def schedulable(self) -> bool:
        """True when no live member is blocked outside the run queue.

        Members that have exited no longer count; a member blocked on
        I/O, a fault, or an un-tripped barrier makes the whole gang
        ineligible, which is exactly the co-scheduling property.
        """
        from repro.kernel.process import ProcessState  # local: avoids import cycle at module load

        for member in self.members:
            if member.state in (ProcessState.BLOCKED, ProcessState.NEW):
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gang {self.name} members={len(self.members)}>"
