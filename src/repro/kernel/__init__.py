"""Kernel glue: machine configuration, process model, syscalls, locks,
and the kernel that boots and drives everything."""

from repro.kernel.gang import Gang
from repro.kernel.kernel import Kernel, KernelError
from repro.kernel.locks import Barrier, KernelLock, LockError
from repro.kernel.machine import DiskSpec, MachineConfig, NicSpec
from repro.kernel.process import Process, ProcessState
from repro.kernel.syscalls import (
    Acquire,
    BarrierWait,
    Behavior,
    Checkpoint,
    Compute,
    ReadFile,
    Release,
    SendNetwork,
    SetWorkingSet,
    Sleep,
    Spawn,
    WaitChildren,
    WriteFile,
    WriteMetadata,
)

__all__ = [
    "Kernel",
    "KernelError",
    "MachineConfig",
    "DiskSpec",
    "NicSpec",
    "SendNetwork",
    "Process",
    "ProcessState",
    "KernelLock",
    "Barrier",
    "Gang",
    "LockError",
    "Behavior",
    "Checkpoint",
    "Compute",
    "SetWorkingSet",
    "ReadFile",
    "WriteFile",
    "WriteMetadata",
    "Sleep",
    "Spawn",
    "WaitChildren",
    "BarrierWait",
    "Acquire",
    "Release",
]
