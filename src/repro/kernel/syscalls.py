"""The operations a simulated process can yield to the kernel.

Process behaviour is written as a Python generator that yields these
request objects; the kernel interprets each one, blocks the process
while it is serviced, and resumes the generator with the result (if
any).  Example::

    def compile_task(fs, src, obj):
        yield SetWorkingSet(pages=512)
        yield ReadFile(src, 0, src.size_bytes)
        yield Compute(msecs(800))
        yield WriteFile(obj, 0, obj.size_bytes)
        yield WriteMetadata(obj)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.fs.layout import File
    from repro.kernel.locks import Barrier, KernelLock

#: A process behaviour: yields syscall ops, receives their results.
Behavior = Generator[object, object, None]


@dataclass(frozen=True)
class Compute:
    """Run on a CPU for ``duration_us`` of CPU time.

    Wall-clock time can be longer: the process competes for CPUs and
    may page-fault along the way if its working set is not resident.
    """

    duration_us: int

    def __post_init__(self) -> None:
        if self.duration_us <= 0:
            raise ValueError(f"compute duration must be positive, got {self.duration_us}")


@dataclass(frozen=True)
class SetWorkingSet:
    """Declare the process's anonymous working set.

    Growing it causes demand faults as the new pages are touched;
    shrinking it releases the excess pages immediately.
    """

    pages: int
    touches_per_ms: float = 4.0
    fault_cluster_pages: int = 8

    def __post_init__(self) -> None:
        if self.pages < 0:
            raise ValueError(f"working set must be >= 0, got {self.pages}")


@dataclass(frozen=True)
class ReadFile:
    """Read a byte range through the buffer cache (blocks on misses)."""

    file: "File"
    offset: int
    nbytes: int


@dataclass(frozen=True)
class WriteFile:
    """Delayed write (blocks only under memory pressure)."""

    file: "File"
    offset: int
    nbytes: int


@dataclass(frozen=True)
class WriteMetadata:
    """Synchronous one-sector metadata write (blocks until on disk)."""

    file: "File"


@dataclass(frozen=True)
class SendNetwork:
    """Transmit ``nbytes`` on NIC ``nic``; blocks until the last
    fragment leaves the wire."""

    nbytes: int
    nic: int = 0

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise ValueError(f"message must carry >= 1 byte, got {self.nbytes}")


@dataclass(frozen=True)
class Sleep:
    """Block for a fixed simulated duration (think: timers, think time)."""

    duration_us: int

    def __post_init__(self) -> None:
        if self.duration_us < 0:
            raise ValueError(f"sleep must be >= 0, got {self.duration_us}")


@dataclass(frozen=True)
class Checkpoint:
    """Record a timestamped marker on the process (no cost, no block).

    Markers land in ``process.checkpoints`` as ``(label, time)`` pairs;
    workloads use them to expose per-iteration latency distributions
    (e.g. every interactive burst) without any external instrumentation.
    """

    label: str = ""


@dataclass(frozen=True)
class Spawn:
    """Create a child process in the same SPU; yields the child's pid."""

    behavior: Behavior
    #: Optional label for metrics/tracing.
    name: str = ""


@dataclass(frozen=True)
class WaitChildren:
    """Block until every child spawned so far has exited."""


@dataclass(frozen=True)
class BarrierWait:
    """Wait until all parties have arrived at the barrier.

    ``spin=False`` blocks (yields the CPU).  ``spin=True`` busy-waits,
    burning CPU until the barrier trips — how SPLASH-2-era parallel
    applications actually behaved, and the reason gang scheduling
    matters: a spinning member wastes its processor whenever the gang
    is dispatched piecemeal.
    """

    barrier: "Barrier"
    spin: bool = False


@dataclass(frozen=True)
class Acquire:
    """Acquire a kernel lock; ``shared=True`` requests read mode."""

    lock: "KernelLock"
    shared: bool = False


@dataclass(frozen=True)
class Release:
    """Release a kernel lock previously acquired."""

    lock: "KernelLock"
