"""Kernel synchronisation: locks and barriers (paper Section 3.4).

Shared kernel structures are protected by semaphores; contention on
them can cross SPU boundaries and break isolation.  The paper's two
fixes are modelled here:

* the inode lock became a **multiple-readers/one-writer** semaphore
  because lookups dominate — :class:`KernelLock` supports both mutual
  exclusion and reader/writer modes, so the ablation bench can compare
  the two;
* a process blocking on a semaphore should transfer its resources to
  the holder (priority inheritance, [SRL90]) — acquiring with
  ``inheritance=True`` boosts the holder's scheduling priority to the
  best waiter's.

:class:`Barrier` supports gang phases in parallel applications (Ocean).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

from repro.cpu.priorities import KERNEL_PRIORITY_BAND

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.process import Process

Grant = Callable[[], None]


class LockError(RuntimeError):
    """Raised on protocol violations (double release, bad holder)."""


class KernelLock:
    """A kernel semaphore, mutual-exclusion or readers/writer.

    The kernel drives it with continuations: :meth:`acquire` either
    grants immediately (returns True) or queues the continuation to be
    called when the lock is granted.
    """

    __slots__ = (
        "name",
        "reader_writer",
        "inheritance",
        "_writer",
        "_readers",
        "_waiters",
        "acquisitions",
        "contentions",
    )

    def __init__(self, name: str, reader_writer: bool = False, inheritance: bool = False):
        self.name = name
        self.reader_writer = reader_writer
        self.inheritance = inheritance
        #: Current exclusive holder, if any.
        self._writer: Optional["Process"] = None
        #: Current shared holders (readers).
        self._readers: List["Process"] = []
        #: FIFO of (process, shared, continuation).
        self._waiters: List[Tuple["Process", bool, Grant]] = []
        #: Contention statistics for the ablation bench.
        self.acquisitions = 0
        self.contentions = 0

    # --- queries ---------------------------------------------------------

    @property
    def held(self) -> bool:
        return self._writer is not None or bool(self._readers)

    def holders(self) -> List["Process"]:
        if self._writer is not None:
            return [self._writer]
        return list(self._readers)

    def waiting(self) -> int:
        return len(self._waiters)

    # --- acquire / release ------------------------------------------------------

    def acquire(self, proc: "Process", shared: bool, granted: Grant) -> bool:
        """Try to take the lock; returns True if granted immediately.

        Without ``reader_writer``, every acquisition is exclusive
        regardless of ``shared`` — that is exactly the unfixed
        inode-lock behaviour the paper measured.
        """
        shared = shared and self.reader_writer
        if self._grantable(shared):
            self._grant(proc, shared)
            return True
        self.contentions += 1
        self._waiters.append((proc, shared, granted))
        if self.inheritance:
            self._boost_holders(proc)
        return False

    def _grantable(self, shared: bool) -> bool:
        if self._writer is not None:
            return False
        if shared:
            # Readers may pile on unless a writer is already queued
            # (prevents writer starvation).
            return not any(not s for _p, s, _g in self._waiters)
        return not self._readers

    def _grant(self, proc: "Process", shared: bool) -> None:
        self.acquisitions += 1
        if shared:
            self._readers.append(proc)
        else:
            self._writer = proc

    def release(self, proc: "Process") -> List[Grant]:
        """Release; returns continuations of newly granted waiters.

        The kernel invokes the continuations (which make the waiters
        runnable) — the lock itself never touches the scheduler.
        """
        if self._writer is proc:
            self._writer = None
            self._boost_clear(proc)
        elif proc in self._readers:
            self._readers.remove(proc)
            self._boost_clear(proc)
        else:
            raise LockError(f"{proc.pid} does not hold lock {self.name!r}")
        if self.held:
            return []
        grants: List[Grant] = []
        while self._waiters:
            waiter, shared, cont = self._waiters[0]
            if not grants:
                # First waiter always gets in (FIFO).
                self._waiters.pop(0)
                self._grant(waiter, shared)
                grants.append(cont)
                if not shared:
                    break
            elif shared:
                self._waiters.pop(0)
                self._grant(waiter, shared)
                grants.append(cont)
            else:
                break
        return grants

    # --- priority inheritance ---------------------------------------------------

    def _boost_holders(self, waiter: "Process") -> None:
        """Transfer the waiter's urgency to the holders.

        The holder's base drops to its best waiter's, and it is lifted
        into the kernel priority band — non-degrading and better than
        every user-band value — until it releases.  The band matters
        under overload: base inheritance alone leaves a holder whose
        SPU is flooded with fresh equal-priority runnable siblings (a
        lock hog inside a fork-bombed SPU) waiting a full run-queue
        rotation per slice, while cross-SPU waiters hang on the lock.
        """
        waiter_base = waiter.priority.base
        for holder in self.holders():
            if waiter_base < holder.priority.base:
                holder.priority.base = waiter_base
            band = KERNEL_PRIORITY_BAND + holder.priority.base
            current = holder.priority.kernel_priority
            if current is None or band < current:
                holder.priority.kernel_priority = band

    def _boost_clear(self, proc: "Process") -> None:
        if self.inheritance:
            proc.priority.base = proc.default_base_priority
            proc.priority.kernel_priority = None


class Barrier:
    """An N-party barrier; the last arrival releases everyone."""

    __slots__ = ("parties", "name", "_waiting", "generation")

    def __init__(self, parties: int, name: str = "barrier"):
        if parties <= 0:
            raise ValueError(f"barrier needs >= 1 party, got {parties}")
        self.parties = parties
        self.name = name
        self._waiting: List[Grant] = []
        #: Completed phases, for tracing/tests.
        self.generation = 0

    def arrive(self, resume: Grant) -> List[Grant]:
        """One party arrives.

        Returns the continuations to run: empty while the barrier
        holds, everyone's (including this arrival's) when it trips.
        """
        self._waiting.append(resume)
        if len(self._waiting) < self.parties:
            return []
        released = self._waiting
        self._waiting = []
        self.generation += 1
        return released
