"""Machine configuration.

A :class:`MachineConfig` describes the simulated hardware and the
resource-allocation scheme; the :class:`~repro.kernel.kernel.Kernel`
builds the whole system from it.  The defaults mirror the paper's
SimOS CHALLENGE configuration where it matters (the experiments set
their own CPU/memory/disk sizes per Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.contracts import EqualShareContract, SharingContract
from repro.core.schemes import DiskSchedPolicy, SchemeConfig, smp_scheme
from repro.disk.model import DiskGeometry, fast_disk
from repro.kernel.overload import OverloadPolicy
from repro.sim.units import MB, PAGE_SIZE


@dataclass(frozen=True)
class DiskSpec:
    """One disk: geometry, scheduling policy, and swap reservation."""

    geometry: DiskGeometry = field(default_factory=fast_disk)
    #: Override of the scheme's disk policy for this disk (None = use
    #: the scheme's).
    policy: Optional[DiskSchedPolicy] = None
    #: Sectors at the top of the disk reserved as swap space.
    swap_sectors: int = 16384

    def __post_init__(self) -> None:
        if self.swap_sectors < 0:
            raise ValueError("swap_sectors must be >= 0")
        if self.swap_sectors >= self.geometry.total_sectors:
            raise ValueError("swap reservation covers the whole disk")


@dataclass(frozen=True)
class NicSpec:
    """One network interface: line rate and scheduling policy.

    ``policy`` is a link-scheduler name: ``"fifo"`` (no isolation),
    ``"fair"`` (per-SPU fair share), or ``"threshold"`` (FIFO until an
    SPU exceeds the mean usage by ``threshold`` decayed bytes/share).
    """

    bandwidth_mbps: float = 100.0
    policy: str = "fair"
    threshold: float = 16384.0

    def __post_init__(self) -> None:
        if self.bandwidth_mbps <= 0:
            raise ValueError("NIC rate must be positive")


@dataclass(frozen=True)
class MachineConfig:
    """The simulated machine plus the allocation scheme to run."""

    ncpus: int = 8
    memory_mb: int = 64
    disks: List[DiskSpec] = field(default_factory=lambda: [DiskSpec()])
    #: Network interfaces; empty by default (most experiments are
    #: CPU/memory/disk-bound, like the paper's).
    nics: List[NicSpec] = field(default_factory=list)
    scheme: SchemeConfig = field(default_factory=smp_scheme)
    contract: SharingContract = field(default_factory=EqualShareContract)
    #: Per-SPU admission limits against abusive workloads (fork bombs,
    #: I/O floods, thrashers); see :mod:`repro.kernel.overload`.
    overload: OverloadPolicy = field(default_factory=OverloadPolicy)
    seed: int = 0
    #: Pages taken by kernel code/data at boot; defaults (when None) to
    #: 1/16th of memory.
    kernel_pages: Optional[int] = None

    def __post_init__(self) -> None:
        if self.ncpus <= 0:
            raise ValueError("machine needs at least one CPU")
        if self.memory_mb <= 0:
            raise ValueError("machine needs memory")
        if not self.disks:
            raise ValueError("machine needs at least one disk")
        if self.seed < 0:
            raise ValueError(f"seed must be >= 0, got {self.seed}")
        if self.kernel_pages is not None:
            if self.kernel_pages < 0:
                raise ValueError(
                    f"kernel_pages must be >= 0, got {self.kernel_pages}"
                )
            if self.kernel_pages >= self.total_pages:
                raise ValueError(
                    f"kernel_pages ({self.kernel_pages}) must leave user"
                    f" pages out of {self.total_pages}"
                )

    @property
    def total_pages(self) -> int:
        return self.memory_mb * MB // PAGE_SIZE

    @property
    def boot_kernel_pages(self) -> int:
        if self.kernel_pages is not None:
            return self.kernel_pages
        return self.total_pages // 16
