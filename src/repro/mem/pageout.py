"""The pageout daemon.

IRIX keeps a pager/swapper pair that replenishes the free-page pool in
the background; the paper's implementation made "the paging and
swapping functions ... aware of SPUs and per-SPU memory limits"
(Section 3.2).  This daemon periodically steals pages — preferring
SPUs that are over their entitlement — until the free pool is back at
the Reserve Threshold, taking reclamation off the page-fault critical
path.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.mem.manager import MemoryManager
from repro.sim.engine import Engine, PeriodicTimer
from repro.sim.units import MSEC

#: Evicts one page from the given SPU; returns False if nothing to take.
StealFn = Callable[[int], bool]


class PageoutDaemon:
    """Keeps ``free_pages`` at or above the Reserve Threshold."""

    __slots__ = (
        "engine",
        "manager",
        "steal_from",
        "period",
        "max_batch",
        "_timer",
        "reclaimed",
    )

    def __init__(
        self,
        engine: Engine,
        manager: MemoryManager,
        steal_from: StealFn,
        period: int = 250 * MSEC,
        max_batch: int = 64,
    ):
        if max_batch <= 0:
            raise ValueError("batch must be positive")
        self.engine = engine
        self.manager = manager
        self.steal_from = steal_from
        self.period = period
        self.max_batch = max_batch
        self._timer: Optional[PeriodicTimer] = None
        #: Pages reclaimed over the run, for reporting.
        self.reclaimed = 0

    def start(self) -> None:
        if self._timer is not None:
            raise RuntimeError("pageout daemon already started")
        self._timer = self.engine.every(self.period, self.scan)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()
            self._timer = None

    def scan(self) -> int:
        """One pass: steal until the reserve is met or the batch caps out."""
        stolen = 0
        target = self.manager.reserve_pages
        while self.manager.free_pages < target and stolen < self.max_batch:
            victim = self._victim()
            if victim is None or not self.steal_from(victim):
                break
            stolen += 1
        self.reclaimed += stolen
        return stolen

    def _victim(self) -> Optional[int]:
        """Whose page to reclaim: borrowers first, then biggest holders.

        Under isolation schemes, background reclaim must never eat into
        an SPU's entitled-and-used pages while a borrower exists; only
        when nobody is over entitlement does it fall back to the
        largest user (which is also the SMP behaviour).
        """
        users = self.manager.registry.active_user_spus()
        if not users:
            return None
        if self.manager.scheme.mem_limits:
            borrowers = [s for s in users if s.memory().over_entitlement]
            if borrowers:
                victim = max(
                    borrowers,
                    key=lambda s: (s.memory().used - s.memory().entitled, -s.spu_id),
                )
                return victim.spu_id
            return None
        holders = [s for s in users if s.memory().used > 0]
        if not holders:
            return None
        return max(holders, key=lambda s: (s.memory().used, -s.spu_id)).spu_id
