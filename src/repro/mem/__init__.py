"""Memory substrate: the page pool with per-SPU accounting, the
idle-memory sharing daemon, and the working-set demand-paging model."""

from repro.mem.manager import MemoryManager, OutOfMemoryError
from repro.mem.pageout import PageoutDaemon
from repro.mem.sharing import MemorySharingDaemon
from repro.mem.workingset import WorkingSetModel

__all__ = [
    "MemoryManager",
    "OutOfMemoryError",
    "MemorySharingDaemon",
    "PageoutDaemon",
    "WorkingSetModel",
]
