"""Physical memory management with per-SPU page accounting.

The manager is the single source of pages: process anonymous memory and
the file buffer cache both allocate here (it implements the
filesystem's ``PageProvider`` protocol).  Per the paper (Section 3.2):

* every allocation records the requesting SPU's id and bumps its page
  count (the *used* level);
* with isolation enabled, a request is denied once the SPU has used its
  *allowed* pages — even if the machine still has free memory;
* without isolation (the SMP scheme) a request fails only when there is
  no free page in the whole system;
* the kernel SPU is never denied.

Denials are counted per SPU between rebalance periods; the sharing
daemon uses them as the memory-pressure signal.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional

from repro.core.schemes import SchemeConfig
from repro.core.spu import SPU, SPURegistry


class OutOfMemoryError(RuntimeError):
    """Raised when an internal invariant on the page pool breaks."""


# One MemoryManager per kernel; allocation speed is bounded by the
# ResourceLevels checks, not attribute lookup on the manager.
class MemoryManager:  # simlint: disable=SL401
    """The physical page pool, charged per SPU."""

    def __init__(
        self,
        registry: SPURegistry,
        total_pages: int,
        scheme: SchemeConfig,
        kernel_pages: int = 0,
        rng: Optional[random.Random] = None,
    ):
        if total_pages <= 0:
            raise ValueError("machine must have at least one page")
        if not 0 <= kernel_pages < total_pages:
            raise ValueError(
                f"kernel_pages ({kernel_pages}) must leave user pages"
                f" out of {total_pages}"
            )
        self.registry = registry
        self.total_pages = total_pages
        self.scheme = scheme
        self.free_pages = total_pages
        self._rng = rng if rng is not None else random.Random(0)
        #: Allocation denials per SPU since the last rebalance; the
        #: sharing daemon's memory-pressure signal.
        self.denials: Dict[int, int] = {}
        #: Cumulative denials per SPU over the whole run — never reset,
        #: so the overload guard can diff them across its periods even
        #: while the sharing daemon consumes :attr:`denials`.
        self.total_denials: Dict[int, int] = {}
        #: Pages removed by hardware faults over the run.
        self.decommissioned = 0

        # The kernel and shared SPUs are capped only by the machine.
        for spu in (registry.kernel_spu, registry.shared_spu):
            spu.memory().set_allowed(total_pages)

        # Boot-time kernel code/data pages.
        if kernel_pages:
            for _ in range(kernel_pages):
                if not self.try_allocate(registry.kernel_spu.spu_id):
                    raise OutOfMemoryError("kernel pages exceed machine memory")

    # --- derived quantities ------------------------------------------------

    @property
    def reserve_pages(self) -> int:
        """Pages kept free to hide memory revocation cost (Section 3.2)."""
        return int(self.total_pages * self.scheme.params.reserve_threshold)

    def user_pool(self) -> int:
        """Pages divisible among *active* user SPUs.

        Total memory less kernel and shared usage, and less pages still
        held by suspended/inactive user SPUs (e.g. their leftover
        buffer-cache blocks) — entitling active SPUs to pages someone
        else holds would over-commit the machine.
        """
        active_ids = {s.spu_id for s in self.registry.active_user_spus()}
        unavailable = sum(
            spu.memory().used
            for spu in self.registry.all_spus()
            if spu.spu_id not in active_ids and spu.is_user
        )
        kernel_used = self.registry.kernel_spu.memory().used
        shared_used = self.registry.shared_spu.memory().used
        return max(0, self.total_pages - kernel_used - shared_used - unavailable)

    def used_by(self, spu_id: int) -> int:
        return self.registry.get(spu_id).memory().used

    # --- PageProvider protocol -----------------------------------------------

    def try_allocate(self, spu_id: int) -> bool:
        """Charge one page to ``spu_id``; False on denial.

        This is the hottest call in the memory subsystem (every page
        grant lands here), so the :meth:`_capped`/``can_use`` pair is
        inlined.
        """
        spu = self.registry.get(spu_id)
        if self.free_pages <= 0:
            self._deny(spu_id)
            return False
        levels = spu.memory()
        if (
            self.scheme.mem_limits
            and spu.is_user
            and levels.used + 1 > levels.allowed
        ):
            self._deny(spu_id)
            return False
        levels.acquire(1)
        self.free_pages -= 1
        return True

    def try_allocate_n(self, spu_id: int, n: int) -> int:
        """Charge up to ``n`` pages to ``spu_id``; returns pages granted.

        Exactly equivalent to that many successful :meth:`try_allocate`
        calls — the grant is capped by the free pool and (under memory
        limits) the SPU's headroom, and **no denial is recorded**: a
        caller wanting more than was granted must fall back to the
        per-page path, whose first failure records the one denial the
        per-page loop would have.
        """
        if n <= 0:
            return 0
        grant = n if n < self.free_pages else self.free_pages
        if grant <= 0:
            return 0
        spu = self.registry.get(spu_id)
        levels = spu.memory()
        if self.scheme.mem_limits and spu.is_user:
            headroom = levels.allowed - levels.used
            if headroom < grant:
                grant = headroom
            if grant <= 0:
                return 0
        levels.acquire(grant)
        self.free_pages -= grant
        return grant

    def _deny(self, spu_id: int) -> None:
        self.denials[spu_id] = self.denials.get(spu_id, 0) + 1
        self.total_denials[spu_id] = self.total_denials.get(spu_id, 0) + 1

    def free(self, spu_id: int) -> None:
        """Return one page charged to ``spu_id``."""
        self.registry.get(spu_id).memory().release(1)
        self.free_pages += 1
        if self.free_pages > self.total_pages:  # pragma: no cover - invariant
            raise OutOfMemoryError("freed more pages than the machine has")

    def free_n(self, spu_id: int, n: int) -> None:
        """Return ``n`` pages charged to ``spu_id`` in one call."""
        if n <= 0:
            return
        self.registry.get(spu_id).memory().release(n)
        self.free_pages += n
        if self.free_pages > self.total_pages:  # pragma: no cover - invariant
            raise OutOfMemoryError("freed more pages than the machine has")

    def transfer(self, from_spu: int, to_spu: int) -> bool:
        """Move one page's charge between SPUs (shared-page marking).

        The destination's cap is deliberately not enforced: marking a
        page shared must not fail, and the shared/kernel SPUs are only
        capped by the machine.
        """
        source = self.registry.get(from_spu)
        dest = self.registry.get(to_spu)
        if source.memory().used <= 0:
            return False
        source.memory().release(1)
        levels = dest.memory()
        if not levels.can_use(1):
            levels.set_allowed(levels.used + 1)
        levels.acquire(1)
        return True

    def _capped(self, spu: SPU) -> bool:
        """Whether per-SPU limits apply to this SPU under this scheme."""
        return self.scheme.mem_limits and spu.is_user

    # --- hardware faults -----------------------------------------------------

    def decommission(self, pages: int, evict: Optional[Callable[[], bool]] = None) -> int:
        """Remove ``pages`` physical pages from the machine (module loss).

        Free pages go first.  When the free pool runs dry, ``evict``
        is asked to free one in-use page per call (the kernel's
        page-stealing path: the victim is charged, its page moves to
        swap, and the process re-faults later).  Stops early — and
        returns how many pages actually left — if eviction cannot make
        progress or the machine would drop to zero pages.
        """
        if pages < 0:
            raise ValueError(f"cannot decommission {pages} pages")
        removed = 0
        while removed < pages and self.total_pages > 1:
            if self.free_pages <= 0:
                if evict is None or not evict():  # simlint: dynamic=continuation
                    break
                if self.free_pages <= 0:
                    break
            self.free_pages -= 1
            self.total_pages -= 1
            removed += 1
        self.decommissioned += removed
        return removed

    def recommission(self, pages: int) -> None:
        """Return ``pages`` physical pages to the machine (module repair)."""
        if pages < 0:
            raise ValueError(f"cannot recommission {pages} pages")
        self.total_pages += pages
        self.free_pages += pages

    # --- pressure signals ----------------------------------------------------

    def take_denials(self) -> Dict[int, int]:
        """Return and reset the per-SPU denial counts."""
        out = self.denials
        self.denials = {}
        return out

    def under_pressure(self, spu: SPU) -> bool:
        """An SPU at (or over) its cap with recent denials wants pages."""
        return self.denials.get(spu.spu_id, 0) > 0

    # --- victim selection for page stealing --------------------------------------

    def victim_spu(self, requester_id: int) -> Optional[SPU]:
        """Whose page should be stolen so ``requester`` can allocate?

        * Isolation schemes: if the requester is at its own cap, it must
          steal from itself.  If the machine is out of free pages while
          the requester still has headroom, the pages are held by a
          *borrower* — revoke from the user SPU borrowing the most.
        * SMP: global replacement — any page in the machine is fair
          game, so the victim SPU is drawn at random weighted by pages
          held, approximating a global clock/LRU sweep (this is exactly
          how a heavy job hurts a light one on a stock kernel).
        """
        requester = self.registry.get(requester_id)
        users = self.registry.active_user_spus()
        if not users:
            return None
        if self._capped(requester):
            if not requester.memory().can_use(1):
                return requester if requester.memory().used > 0 else None
            borrowers = [s for s in users if s.memory().over_entitlement]
            if borrowers:
                return max(
                    borrowers,
                    key=lambda s: (s.memory().used - s.memory().entitled, -s.spu_id),
                )
        holders = [s for s in users if s.memory().used > 0]
        if not holders:
            return None
        weights = [s.memory().used for s in holders]
        return self._rng.choices(holders, weights=weights, k=1)[0]
