"""The memory-sharing daemon (paper Section 3.2).

Periodically:

1. recomputes user-SPU *entitlements* from the pool left over after the
   kernel and shared SPUs' usage (their cost is effectively borne by
   everyone);
2. under PIso, redistributes idle pages — total free pages less the
   Reserve Threshold — to SPUs under memory pressure by raising their
   *allowed* level;
3. lowers the *allowed* level of SPUs whose loans should shrink (the
   lender changed its mind, or pressure moved elsewhere).  ``allowed``
   never drops below ``max(entitled, used)``; actually taking pages
   back is the page-stealing path's job, so revocation is gradual, as
   in the paper ("the memory re-allocation is temporary, and can be
   reset if the memory situation ... changes").
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.contracts import SharingContract
from repro.core.resources import Resource
from repro.core.spu import SPU, SPURegistry
from repro.mem.manager import MemoryManager
from repro.sim.engine import Engine, PeriodicTimer


class MemorySharingDaemon:
    """Recomputes entitlements and lends idle pages."""

    __slots__ = (
        "engine",
        "manager",
        "contract",
        "registry",
        "_timer",
        "loans",
    )

    def __init__(
        self,
        engine: Engine,
        manager: MemoryManager,
        contract: SharingContract,
    ):
        self.engine = engine
        self.manager = manager
        self.contract = contract
        self.registry: SPURegistry = manager.registry
        self._timer: Optional[PeriodicTimer] = None
        #: Loans granted (SPU id -> extra pages above entitlement), for
        #: reporting.
        self.loans: Dict[int, int] = {}

    # --- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        if self._timer is not None:
            raise RuntimeError("memory daemon already started")
        period = self.manager.scheme.params.memory_rebalance_period
        self._timer = self.engine.every(period, self.rebalance)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()
            self._timer = None

    # --- the rebalance pass ---------------------------------------------------

    def rebalance(self) -> None:
        """One pass: re-entitle, then lend or revoke."""
        users = self.registry.active_user_spus()
        if not users:
            return
        self._update_entitlements(users)
        denials = self.manager.take_denials()
        if self.manager.scheme.mem_sharing:
            self._share_idle(users, denials)
        else:
            self._clamp_allowed(users)
        self.loans = {
            s.spu_id: s.memory().borrowed for s in users if s.memory().borrowed
        }

    def _update_entitlements(self, users) -> None:
        """Divide the non-kernel, non-shared pool among user SPUs.

        The allocation of pages to SPUs is "periodically updated to
        account for changes in the usage of the shared and kernel SPUs"
        — so entitlements shrink as shared/kernel usage grows.
        """
        pool = self.manager.user_pool()
        for spu, entitled in self.contract.entitlements(pool, users).items():
            levels = self.registry.get(spu).memory()
            levels.set_entitled(entitled)

    def _clamp_allowed(self, users) -> None:
        """No sharing (Quo): caps stay at the entitlement."""
        for spu in users:
            levels = spu.memory()
            levels.set_allowed(max(levels.entitled, levels.used))

    def _share_idle(self, users, denials: Dict[int, int]) -> None:
        """Lend idle pages to pressured SPUs; shrink stale loans."""
        pressured = [s for s in users if denials.get(s.spu_id, 0) > 0]

        # Idle supply: what the lenders' policies are willing to give,
        # bounded by actually-free memory beyond the Reserve Threshold.
        policy = self.manager.scheme.sharing_policy
        willing = sum(policy.lendable(s, Resource.MEMORY) for s in users)
        free_beyond_reserve = max(
            0, self.manager.free_pages - self.manager.reserve_pages
        )
        excess = min(willing, free_beyond_reserve)

        # First shrink every cap to its floor; loans are then re-granted
        # from scratch, which both revokes stale loans and keeps the
        # bookkeeping simple.
        for spu in users:
            levels = spu.memory()
            levels.set_allowed(max(levels.entitled, levels.used))

        if excess <= 0 or not pressured:
            return
        # Split the excess among pressured borrowers, weighted by their
        # recent denial counts (a needier SPU gets a larger loan).
        total_denials = sum(denials[s.spu_id] for s in pressured)
        for spu in pressured:
            share = round(excess * denials[spu.spu_id] / total_denials)
            if share <= 0:
                continue
            levels = spu.memory()
            levels.set_allowed(levels.allowed + share)
