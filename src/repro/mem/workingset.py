"""Working-set model for demand paging.

Processes are modelled by their working-set size rather than by
individual references: while computing, a process touches its working
set; if fewer pages are resident than the working set, touches miss at
a rate proportional to the deficit, and each miss is a page fault
serviced from disk.  This is the classical working-set miss model, and
it is all the memory experiments need — their results are driven by
*how often* jobs fault under a given page budget, not by which
addresses miss.

Fault inter-arrival times are drawn from an exponential distribution
over a deterministic per-process RNG stream, so runs replay exactly.
"""

from __future__ import annotations

import random
from typing import Optional


class WorkingSetModel:
    """Fault timing for one process.

    Parameters
    ----------
    ws_pages:
        The working-set size in pages.  A process with ``resident >=
        ws_pages`` never faults.
    touches_per_ms:
        How many distinct-page touches the process makes per
        millisecond of CPU time.  Together with the deficit fraction
        this sets the fault rate: ``rate = touches_per_ms * (1 -
        resident / ws_pages)``.
    fault_cluster_pages:
        Pages brought in per fault (page-in plus read-around), so a
        cold start ramps in ``ws_pages / fault_cluster_pages`` faults.
    rng:
        Deterministic random stream for inter-arrival draws.
    """

    __slots__ = ("ws_pages", "touches_per_ms", "fault_cluster_pages", "_rng")

    def __init__(
        self,
        ws_pages: int,
        rng: random.Random,
        touches_per_ms: float = 4.0,
        fault_cluster_pages: int = 8,
    ):
        if ws_pages < 0:
            raise ValueError(f"working set must be >= 0 pages, got {ws_pages}")
        if touches_per_ms <= 0:
            raise ValueError("touch rate must be positive")
        if fault_cluster_pages <= 0:
            raise ValueError("fault cluster must be >= 1 page")
        self.ws_pages = ws_pages
        self.touches_per_ms = touches_per_ms
        self.fault_cluster_pages = fault_cluster_pages
        self._rng = rng

    def miss_fraction(self, resident: int) -> float:
        """Fraction of touches that miss with ``resident`` pages in core."""
        if self.ws_pages == 0 or resident >= self.ws_pages:
            return 0.0
        return 1.0 - resident / self.ws_pages

    def time_to_next_fault(self, resident: int) -> Optional[int]:
        """Microseconds of CPU time until the next fault, or None.

        ``None`` means the process will not fault (working set fully
        resident).
        """
        miss = self.miss_fraction(resident)
        if miss <= 0.0:
            return None
        rate_per_us = self.touches_per_ms * miss / 1000.0
        draw = self._rng.expovariate(rate_per_us)
        # Clamp to at least one microsecond so a tiny deficit cannot
        # schedule a zero-length run and livelock the scheduler.
        return max(1, round(draw))

    def pages_per_fault(self, resident: int) -> int:
        """How many pages the fault service brings in (clipped to need)."""
        deficit = self.ws_pages - resident
        if deficit <= 0:
            return 0
        return min(self.fault_cluster_pages, deficit)
