"""``python -m repro.chaos`` — the bounded chaos soak CI runs.

Runs one generated plan per seed and exits 1 on the first invariant
violation, after writing a replayable repro file (``--repro PATH``)
that ``repro.chaos.shrink`` can minimise.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro.chaos.shrink import write_repro
from repro.chaos.soak import run_soak
from repro.sim.units import MSEC


def main(argv: List[str] = sys.argv[1:]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.chaos",
        description="Seeded chaos soak: antagonist bursts + hardware faults"
        " against a victim SPU, with invariants checked throughout.",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="first seed of the soak range; the soak runs seeds"
        " seed..seed+4 unless --seeds overrides (default: 0)",
    )
    parser.add_argument(
        "--seeds", type=int, nargs="+", default=None,
        help="explicit seed list, one generated plan each"
        " (overrides --seed)",
    )
    parser.add_argument(
        "--horizon-ms", type=int, default=4000,
        help="simulated horizon per run in milliseconds (default: 4000)",
    )
    parser.add_argument(
        "--repro", default="chaos-repro.json",
        help="where to write the repro file on violation"
        " (default: chaos-repro.json)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes to fan seeds across"
        " (default: 1 = in-process; 0 = auto)",
    )
    parser.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=False,
        help="answer already-soaked (seed, horizon, scheme) cells from"
        " the content-addressed sweep cache (default: --no-cache)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="sweep-cache store root (default: $REPRO_CACHE_DIR or"
        " .repro-cache)",
    )
    args = parser.parse_args(argv)

    seeds = args.seeds if args.seeds is not None \
        else list(range(args.seed, args.seed + 5))
    max_workers = None if args.workers == 0 else args.workers
    results = run_soak(
        seeds, horizon_us=args.horizon_ms * MSEC, max_workers=max_workers,
        cache=args.cache, cache_dir=args.cache_dir,
    )
    failed = False
    for seed, result in zip(seeds, results):
        status = "ok" if result.ok else "VIOLATION"
        print(
            f"seed {seed}: {status} — {result.checkpoints} checkpoints,"
            f" {result.faults_applied} faults"
            f" (+{result.faults_skipped} skipped),"
            f" {result.escalations} escalations,"
            f" {len(result.violations)} violations"
        )
        if not result.ok and not failed:
            failed = True
            write_repro(args.repro, result)
            first = result.violations[0]
            print(f"  first violation: [t={first.time_us}us]"
                  f" {first.name}: {first.detail}")
            print(f"  repro file written to {args.repro}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
