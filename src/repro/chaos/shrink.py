"""Repro files and delta-shrinking for failing chaos plans.

When a soak run breaks an invariant, the harness writes a **repro
file**: the full :class:`~repro.chaos.plan.ChaosPlan` plus the first
violation it produced.  Loading the file and calling :func:`replay`
re-runs the identical simulation (same seed → same RNG streams → same
schedule) and must reproduce the same violation.

:func:`shrink_plan` then minimises the plan with the universal ddmin
core (:func:`repro.fuzz.ddmin.ddmin`): it repeatedly re-runs subsets of
the plan's events (bursts and faults together) and keeps the smallest
subset that still triggers a violation of the same *name*.  A
``CpuAdd`` orphaned by dropping its paired ``CpuRemove`` is fine — the
soak runner arms plans with ``on_error="skip"`` precisely so every
subset stays runnable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.chaos.plan import AntagonistBurst, ChaosPlan, ChaosPlanError
from repro.chaos.soak import ChaosResult, run_chaos
from repro.faults import FaultEvent, Violation
from repro.kernel.kernel import Kernel

REPRO_FORMAT = "repro.chaos/1"

#: A shrinkable unit: one burst or one fault event.
ChaosEvent = Union[AntagonistBurst, "FaultEvent"]


# --- repro files -------------------------------------------------------------


def repro_record(result: ChaosResult) -> Dict[str, Any]:
    """The repro-file payload for a failing run."""
    if result.ok:
        raise ValueError("run produced no violation; nothing to reproduce")
    first = result.violations[0]
    return {
        "format": REPRO_FORMAT,
        "plan": result.plan.to_dict(),
        "violation": {
            "time_us": first.time_us,
            "name": first.name,
            "detail": first.detail,
        },
    }


def write_repro(path: str, result: ChaosResult) -> None:
    """Write a failing run's repro file (JSON, stable key order)."""
    with open(path, "w") as fh:
        json.dump(repro_record(result), fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_repro(path: str) -> Tuple[ChaosPlan, Violation]:
    """Read a repro file back into (plan, recorded first violation)."""
    with open(path) as fh:
        record = json.load(fh)
    if record.get("format") != REPRO_FORMAT:
        raise ChaosPlanError(
            f"not a chaos repro file (format={record.get('format')!r})"
        )
    plan = ChaosPlan.from_dict(record["plan"])
    v = record["violation"]
    return plan, Violation(v["time_us"], v["name"], v["detail"])


def replay(
    path: str, sabotage: Optional[Callable[[Kernel], None]] = None
) -> ChaosResult:
    """Re-run a repro file's plan; returns the (deterministic) result."""
    plan, _ = load_repro(path)
    return run_chaos(plan, sabotage=sabotage)


# --- delta shrinking ---------------------------------------------------------


@dataclass
class ShrinkResult:
    """The minimal plan ddmin converged on, plus bookkeeping."""

    plan: ChaosPlan
    violation_name: str
    runs: int


def _split_events(plan: ChaosPlan) -> List[ChaosEvent]:
    return list(plan.bursts) + list(plan.faults.events)


def _join_events(plan: ChaosPlan, events: List[ChaosEvent]) -> ChaosPlan:
    bursts = [e for e in events if isinstance(e, AntagonistBurst)]
    faults = [e for e in events if not isinstance(e, AntagonistBurst)]
    return plan.replace_events(bursts, faults)


def shrink_plan(
    plan: ChaosPlan,
    violation_name: str,
    sabotage: Optional[Callable[[Kernel], None]] = None,
    max_runs: int = 64,
) -> ShrinkResult:
    """ddmin the plan's events down to a minimal still-failing set.

    ``violation_name`` anchors the search: a subset "fails" only if it
    still produces a violation of that name, so the shrink cannot
    wander off to a different bug.  ``max_runs`` bounds the number of
    replays (each replay is a full simulation).
    """
    from repro.fuzz.ddmin import ddmin

    runs = 0

    def fails(events: List[ChaosEvent]) -> bool:
        nonlocal runs
        runs += 1
        result = run_chaos(_join_events(plan, events), sabotage=sabotage)
        return any(v.name == violation_name for v in result.violations)

    events = _split_events(plan)
    if not fails(events):
        raise ValueError(
            f"plan does not produce a {violation_name!r} violation; cannot shrink"
        )

    if events and runs < max_runs:
        # The closure counts every probe in ``runs``; ddmin's own
        # count is deliberately unused.
        events, _ = ddmin(events, fails, max_runs=max_runs - runs)

    return ShrinkResult(
        plan=_join_events(plan, events),
        violation_name=violation_name,
        runs=runs,
    )
