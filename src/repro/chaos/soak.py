"""The chaos soak: one plan against one kernel, fully journalled.

:func:`run_chaos` boots the standard chaos machine, plants a
latency-sensitive victim SPU next to an attacker SPU, arms the plan's
fault schedule (``on_error="skip"`` so shrunken plans stay runnable),
fires each antagonist burst at its appointed time, and runs to the
horizon under the :class:`~repro.faults.InvariantWatchdog` and the
:class:`~repro.faults.OverloadGuard`.

Two invariant families are asserted:

* the PR-1 conservation laws (pages, CPU capacity, level sanity,
  starvation, dead drives), via the watchdog;
* **victim progress**: the victim's jobs checkpoint after every short
  compute burst, and no :data:`PROGRESS_WINDOW_US` window of the run
  may pass without a single victim checkpoint.  This is the paper's
  isolation claim as a lower bound — whatever the antagonists and the
  hardware do, the victim keeps moving.

Every notable occurrence (burst launches, faults applied or skipped,
guard escalations, violations) lands in a deterministic journal: the
same plan replays to the byte-identical journal, which is what makes
repro files and delta-shrinking trustworthy.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.antagonists import launch
from repro.chaos.plan import (
    CHAOS_MEMORY_MB,
    CHAOS_NCPUS,
    CHAOS_NDISKS,
    ChaosPlan,
    generate_plan,
)
from repro.core.schemes import SchemeConfig, piso_scheme
from repro.disk.model import fast_disk
from repro.faults import FaultInjector, InvariantWatchdog, OverloadGuard, Violation
from repro.kernel.kernel import Kernel
from repro.kernel.locks import KernelLock
from repro.kernel.machine import DiskSpec, MachineConfig
from repro.kernel.syscalls import Acquire, Behavior, Checkpoint, Compute, Release, SetWorkingSet
from repro.sim.units import MSEC

#: No victim-progress window may be empty of checkpoints.
PROGRESS_WINDOW_US = 250 * MSEC
#: Victim shape: a few small jobs checkpointing every short burst.
VICTIM_JOBS = 2
VICTIM_BURST_US = 5 * MSEC
VICTIM_WS_PAGES = 64
VICTIM_LOCK_HOLD_US = 50


@dataclass
class ChaosResult:
    """Everything one soak run produced."""

    plan: ChaosPlan
    #: Watchdog violations plus victim-progress violations, time-ordered.
    violations: List[Violation] = field(default_factory=list)
    #: Deterministic, time-ordered log of the whole run.
    journal: List[str] = field(default_factory=list)
    checkpoints: int = 0
    escalations: int = 0
    faults_applied: int = 0
    faults_skipped: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations


def victim_job(lock: KernelLock, rounds: int, tag: str) -> Behavior:
    """Short compute bursts, each followed by a checkpoint.

    The brief shared-lock section keeps the victim on the kernel-lock
    path (so a lock hogger is an actual antagonist for it) without
    making progress depend on anything an attacker can hold for long.
    """
    yield SetWorkingSet(pages=VICTIM_WS_PAGES)
    for i in range(rounds):
        yield Acquire(lock, shared=True)
        yield Compute(VICTIM_LOCK_HOLD_US)
        yield Release(lock)
        yield Compute(VICTIM_BURST_US)
        yield Checkpoint(f"{tag}.{i}")
    yield SetWorkingSet(pages=0)


def progress_violations(
    victim_procs: List, horizon_us: int, window_us: int = PROGRESS_WINDOW_US
) -> List[Violation]:
    """Flag every empty checkpoint window while the victim should move.

    ``window_us`` is the oracle's bound: no window of that many
    microseconds may pass without a single victim checkpoint.  The
    chaos soak uses the fixed :data:`PROGRESS_WINDOW_US`; the fuzzer
    scales the window per scheme (isolation schemes promise tighter
    bounds than sharing ones).
    """
    times = sorted(
        t for p in victim_procs for (_label, t) in p.checkpoints
    )
    # Stop checking once every victim job has exited (a finished victim
    # legitimately stops checkpointing).
    end = horizon_us
    if all(not p.alive for p in victim_procs):
        end = min(horizon_us, max(p.finished for p in victim_procs))
    violations = []
    cursor = 0
    for start in range(0, end - window_us + 1, window_us):
        stop = start + window_us
        while cursor < len(times) and times[cursor] < start:
            cursor += 1
        if cursor < len(times) and times[cursor] < stop:
            continue
        violations.append(
            Violation(
                stop,
                "victim-progress",
                f"no victim checkpoint in [{start}us, {stop}us)",
            )
        )
    return violations


def run_chaos(
    plan: ChaosPlan,
    scheme: Optional[SchemeConfig] = None,
    sabotage: Optional[Callable[[Kernel], None]] = None,
) -> ChaosResult:
    """Replay ``plan`` on the chaos machine and judge the outcome.

    ``sabotage`` is a test hook run right after boot — chaos tests use
    it to plant a deliberate kernel bug and prove the harness catches,
    reproduces, and shrinks it.  Production soaks leave it None.
    """
    scheme = scheme if scheme is not None else piso_scheme()
    config = MachineConfig(
        ncpus=CHAOS_NCPUS,
        memory_mb=CHAOS_MEMORY_MB,
        disks=[DiskSpec(geometry=fast_disk()) for _ in range(CHAOS_NDISKS)],
        scheme=scheme,
        seed=plan.seed,
    )
    kernel = Kernel(config)
    victim = kernel.create_spu("victim")
    attacker = kernel.create_spu("attacker")
    kernel.boot()
    if sabotage is not None:
        sabotage(kernel)

    lock = KernelLock("inode", reader_writer=True, inheritance=True)
    watchdog = InvariantWatchdog(kernel)
    watchdog.start()
    guard = OverloadGuard(
        kernel, pressure_threshold=40, throttle_after=2, kill_after=4
    )
    guard.start()
    injector = FaultInjector(kernel, plan.faults, on_error="skip")
    injector.arm()

    rounds = plan.horizon_us // (VICTIM_BURST_US + VICTIM_LOCK_HOLD_US)
    victim_procs = [
        kernel.spawn(victim_job(lock, rounds, f"v{j}"), victim, name=f"victim-{j}")
        for j in range(VICTIM_JOBS)
    ]

    launches: List[Tuple[int, str]] = []
    for i, burst in enumerate(plan.bursts):
        def fire(burst=burst, i=i) -> None:
            rng = random.Random(f"{plan.seed}/chaos/burst/{i}/{burst.kind}")
            procs = launch(
                kernel, attacker, burst.kind, rng, mount=0,
                shared_lock=lock, scale=burst.scale,
            )
            launches.append(
                (kernel.engine.now,
                 f"burst {i}: {burst.kind} x{len(procs)} (scale {burst.scale:g})")
            )
        kernel.engine.at(burst.at_us, fire, daemon=True)

    kernel.run(until=plan.horizon_us)

    violations = list(watchdog.violations)
    violations += progress_violations(victim_procs, plan.horizon_us)
    violations.sort(key=lambda v: (v.time_us, v.name))

    entries: List[Tuple[int, str]] = []
    entries += [(t, f"launch | {text}") for t, text in launches]
    entries += [(t, f"fault | {text}") for t, text in injector.applied]
    entries += [(t, f"fault-skipped | {text}") for t, text in injector.skipped]
    entries += [
        (e.time_us, f"guard | {e.stage} SPU {e.spu_id}: {e.detail}")
        for e in guard.escalations
    ]
    entries += [(v.time_us, f"VIOLATION | {v.name}: {v.detail}") for v in violations]
    entries.sort(key=lambda e: (e[0], e[1]))

    checkpoints = sum(len(p.checkpoints) for p in victim_procs)
    journal = [f"plan | seed={plan.seed} horizon={plan.horizon_us}us"
               f" bursts={len(plan.bursts)} faults={len(plan.faults)}"]
    journal += [f"t={t:>10} | {text}" for t, text in entries]
    journal.append(
        f"end | checkpoints={checkpoints}"
        f" escalations={len(guard.escalations)}"
        f" violations={len(violations)}"
    )

    return ChaosResult(
        plan=plan,
        violations=violations,
        journal=journal,
        checkpoints=checkpoints,
        escalations=len(guard.escalations),
        faults_applied=len(injector.applied),
        faults_skipped=len(injector.skipped),
    )


def _soak_cell(payload: Tuple[int, Optional[int], Optional[SchemeConfig]]) -> ChaosResult:
    """One (seed, horizon, scheme) soak — the sweep worker function."""
    seed, horizon_us, scheme = payload
    if horizon_us is not None:
        plan = generate_plan(seed, horizon_us=horizon_us)
    else:
        plan = generate_plan(seed)
    return run_chaos(plan, scheme=scheme)


def run_soak(
    seeds: List[int],
    horizon_us: Optional[int] = None,
    scheme: Optional[SchemeConfig] = None,
    max_workers: Optional[int] = 1,
    pool=None,
    cache: bool = False,
    cache_dir: Optional[str] = None,
) -> List[ChaosResult]:
    """Generate and run one chaos plan per seed.

    Each seed's plan is independent and each run is a pure function of
    its plan (journals are byte-identical across replays), so seeds fan
    out across worker processes; results come back in seed order
    regardless of which worker finished first.  ``pool`` is an optional
    shared :class:`repro.parallel.WorkerPool` so a multi-scheme or
    multi-horizon soak pays one fork cost total; ``cache=True`` answers
    previously-soaked seeds from the content-addressed sweep cache
    (byte-identical journals, it stores the pure run's result).
    """
    from repro.parallel import Executor, SweepPlan, values

    plan = SweepPlan(max_workers=max_workers, cache=cache,
                     cache_dir=cache_dir)
    payloads = [(seed, horizon_us, scheme) for seed in seeds]
    return values(Executor(plan, pool=pool).run(_soak_cell, payloads))
