"""Replayable chaos-soak harness: antagonists x faults x invariants.

This package closes the robustness loop.  :mod:`repro.antagonists`
supplies hostile software, :mod:`repro.faults` supplies dying hardware;
chaos composes seeded random mixes of both into a
:class:`~repro.chaos.plan.ChaosPlan`, soaks a victim SPU under the mix
(:func:`~repro.chaos.soak.run_chaos`), and asserts the PR-1
conservation laws plus a victim-progress lower bound.  A violation
yields a replayable repro file, which
:func:`~repro.chaos.shrink.shrink_plan` delta-minimises to the smallest
event set that still breaks the invariant.

``python -m repro.chaos`` is the CI entry point: a bounded multi-seed
soak that exits non-zero (and writes the repro file) on any violation.
"""

from repro.chaos.plan import (
    AntagonistBurst,
    ChaosPlan,
    ChaosPlanError,
    generate_plan,
)
from repro.chaos.shrink import (
    ShrinkResult,
    load_repro,
    replay,
    shrink_plan,
    write_repro,
)
from repro.chaos.soak import ChaosResult, run_chaos, run_soak

__all__ = [
    "AntagonistBurst",
    "ChaosPlan",
    "ChaosPlanError",
    "ChaosResult",
    "ShrinkResult",
    "generate_plan",
    "load_repro",
    "replay",
    "run_chaos",
    "run_soak",
    "shrink_plan",
    "write_repro",
]
