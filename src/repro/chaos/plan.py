"""Chaos plans: seeded antagonist mixes composed with fault schedules.

A :class:`ChaosPlan` is the replayable unit of the chaos harness: a
seed, a horizon, a list of :class:`AntagonistBurst` launches, and a
:class:`~repro.faults.FaultPlan`.  Everything downstream — which
antagonists fire when, which hardware dies when, every RNG stream in
the run — derives from the plan, so a plan that breaks an invariant
*is* the bug report.

:func:`generate_plan` draws a random-but-legal plan from a seed.  The
generator walks simulated time with a small state machine so the raw
fault mix stays meaningful: the machine always keeps at least
``MIN_CPUS_ONLINE`` processors, disk 0 (the failover target) never
dies, and a ``CpuAdd`` is only emitted while a processor is actually
offline.  Delta-shrinking can still break those pairings — the soak
runner arms plans with ``on_error="skip"`` so such plans stay runnable.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.antagonists import ANTAGONIST_KINDS
from repro.faults.plan import (
    CpuAdd,
    CpuRemove,
    DiskTransient,
    DiskFailure,
    FaultEvent,
    FaultPlan,
    FaultPlanError,
    MemoryLoss,
)
from repro.sim.units import MSEC, SEC

#: The chaos machine shape (plan generation must agree with the soak
#: runner about it, so it lives here).
CHAOS_NCPUS = 4
CHAOS_MEMORY_MB = 16
CHAOS_NDISKS = 2
#: Hot-removal never takes the machine below this many processors.
MIN_CPUS_ONLINE = 2


class ChaosPlanError(ValueError):
    """Raised for ill-formed chaos plans."""


@dataclass(frozen=True)
class AntagonistBurst:
    """Launch one antagonist at an absolute simulated time."""

    at_us: int
    kind: str
    scale: float = 1.0

    def _validate(self) -> None:
        # NaN fails every comparison, so explicit finiteness checks
        # must come before the range checks or a NaN time/scale from a
        # hand-edited repro file would slip through.
        for name, value in (("at_us", self.at_us), ("scale", self.scale)):
            if isinstance(value, bool) or not isinstance(value, (int, float)) \
                    or not math.isfinite(value):
                raise ChaosPlanError(
                    f"burst {name} must be a finite number,"
                    f" got {value!r}: {self!r}"
                )
        if self.at_us < 0:
            raise ChaosPlanError(f"burst scheduled before boot: {self!r}")
        if self.kind not in ANTAGONIST_KINDS:
            raise ChaosPlanError(
                f"unknown antagonist {self.kind!r};"
                f" expected one of {ANTAGONIST_KINDS}"
            )
        if self.scale <= 0:
            raise ChaosPlanError(f"burst scale must be positive: {self!r}")


@dataclass
class ChaosPlan:
    """A validated, replayable chaos schedule."""

    seed: int
    horizon_us: int
    bursts: List[AntagonistBurst] = field(default_factory=list)
    faults: FaultPlan = field(default_factory=FaultPlan)

    def __post_init__(self) -> None:
        if isinstance(self.horizon_us, bool) \
                or not isinstance(self.horizon_us, (int, float)) \
                or not math.isfinite(self.horizon_us):
            raise ChaosPlanError(
                f"horizon must be a finite number, got {self.horizon_us!r}"
            )
        if self.horizon_us <= 0:
            raise ChaosPlanError(f"horizon must be positive, got {self.horizon_us}")
        for burst in self.bursts:
            burst._validate()
        self.bursts = sorted(self.bursts, key=lambda b: (b.at_us, b.kind))

    def __len__(self) -> int:
        return len(self.bursts) + len(self.faults)

    def replace_events(
        self, bursts: List[AntagonistBurst], faults: List[FaultEvent]
    ) -> "ChaosPlan":
        """The same plan (seed, horizon) with a different event set."""
        return ChaosPlan(
            seed=self.seed,
            horizon_us=self.horizon_us,
            bursts=list(bursts),
            faults=FaultPlan(list(faults)),
        )

    # --- JSON round-trip ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "horizon_us": self.horizon_us,
            "bursts": [
                {"at_us": b.at_us, "kind": b.kind, "scale": b.scale}
                for b in self.bursts
            ],
            "faults": self.faults.to_dicts(),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "ChaosPlan":
        if not isinstance(record, dict):
            raise ChaosPlanError(f"chaos plan must be an object: {record!r}")
        missing = {"seed", "horizon_us", "bursts", "faults"} - set(record)
        if missing:
            raise ChaosPlanError(f"chaos plan missing fields: {sorted(missing)}")
        try:
            bursts = [AntagonistBurst(**b) for b in record["bursts"]]
        except TypeError as exc:
            raise ChaosPlanError(f"bad burst fields: {exc}") from None
        try:
            faults = FaultPlan.from_dicts(record["faults"])
        except FaultPlanError as exc:
            raise ChaosPlanError(f"bad fault plan: {exc}") from None
        return cls(
            seed=record["seed"],
            horizon_us=record["horizon_us"],
            bursts=bursts,
            faults=faults,
        )

    @classmethod
    def from_json(cls, text: str) -> "ChaosPlan":
        try:
            record = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ChaosPlanError(f"chaos plan is not valid JSON: {exc}") from None
        return cls.from_dict(record)


def generate_plan(
    seed: int,
    horizon_us: int = 8 * SEC,
    max_bursts: int = 3,
    max_faults: int = 4,
) -> ChaosPlan:
    """Draw a random, legal chaos plan from ``seed``.

    Bursts land in the first half of the horizon (so their damage has
    time to show); faults are drawn in time order against a running
    model of machine state, keeping the schedule legal at generation
    time.
    """
    rng = random.Random(f"{seed}/chaos/plan")

    bursts = []
    for _ in range(rng.randint(1, max_bursts)):
        bursts.append(
            AntagonistBurst(
                at_us=rng.randrange(0, max(1, horizon_us // 2)),
                kind=rng.choice(ANTAGONIST_KINDS),
                scale=rng.choice([0.5, 1.0, 1.0, 1.5]),
            )
        )

    events: List[FaultEvent] = []
    cpus_online = CHAOS_NCPUS
    disk1_alive = CHAOS_NDISKS > 1
    times = sorted(
        rng.randrange(0, horizon_us) for _ in range(rng.randint(0, max_faults))
    )
    for at_us in times:
        choices = ["disk_transient", "memory_loss"]
        if cpus_online > MIN_CPUS_ONLINE:
            choices.append("cpu_remove")
        if cpus_online < CHAOS_NCPUS:
            choices.append("cpu_add")
        if disk1_alive:
            choices.append("disk_failure")
        kind = rng.choice(choices)
        if kind == "disk_transient":
            events.append(
                DiskTransient(
                    at_us=at_us,
                    disk=rng.randrange(CHAOS_NDISKS),
                    duration_us=rng.randrange(50 * MSEC, 400 * MSEC),
                    error_rate=round(rng.uniform(0.3, 0.9), 2),
                )
            )
        elif kind == "memory_loss":
            # Bounded well under the victim's needs: at most 1/8 of the
            # machine per event.
            pages = (CHAOS_MEMORY_MB * 256) // 8
            events.append(MemoryLoss(at_us=at_us, pages=rng.randrange(64, pages)))
        elif kind == "cpu_remove":
            events.append(CpuRemove(at_us=at_us))
            cpus_online -= 1
        elif kind == "cpu_add":
            events.append(CpuAdd(at_us=at_us))
            cpus_online += 1
        else:  # disk_failure — never disk 0, the failover target
            events.append(DiskFailure(at_us=at_us, disk=1))
            disk1_alive = False

    return ChaosPlan(
        seed=seed,
        horizon_us=horizon_us,
        bursts=bursts,
        faults=FaultPlan(events),
    )
