"""Performance Isolation — a reproduction of Verghese, Gupta &
Rosenblum, *Performance Isolation: Sharing and Isolation in
Shared-Memory Multiprocessors* (ASPLOS 1998).

The package implements the paper's Software Performance Unit (SPU)
abstraction and the three resource-allocation schemes it evaluates
(SMP / Quo / PIso) on top of a deterministic discrete-event machine
simulator: an IRIX-like kernel with priority CPU scheduling, demand
paged memory, a buffer-cached filesystem, and an HP 97560 disk model.

Quick start::

    from repro import (
        Kernel, MachineConfig, DiskSpec, piso_scheme, Compute,
    )

    def job():
        yield Compute(1_000_000)  # one second of CPU

    kernel = Kernel(MachineConfig(ncpus=4, memory_mb=32, scheme=piso_scheme()))
    spu = kernel.create_spu("me")
    kernel.boot()
    proc = kernel.spawn(job(), spu)
    kernel.run()
    print(proc.response_us)

Subpackages
-----------

* :mod:`repro.core` — the SPU abstraction (the paper's contribution).
* :mod:`repro.sim` — the discrete-event engine.
* :mod:`repro.cpu` / :mod:`repro.mem` / :mod:`repro.disk` /
  :mod:`repro.fs` — the resource substrates.
* :mod:`repro.kernel` — the simulated operating system.
* :mod:`repro.faults` — deterministic hardware-fault injection.
* :mod:`repro.workloads` — pmake, copy, Ocean/Flashlite/VCS models.
* :mod:`repro.experiments` — one driver per paper table/figure.
* :mod:`repro.fuzz` — generative scenario fuzzing with ddmin shrinking.
"""

from repro.core import (
    AlwaysShare,
    DiskSchedPolicy,
    EqualShareContract,
    IsolationParams,
    NeverShare,
    Resource,
    ResourceLevels,
    SPU,
    SPURegistry,
    SchemeConfig,
    ShareIdle,
    SharingPolicy,
    WeightedContract,
    piso_scheme,
    quota_scheme,
    scheme_by_name,
    smp_scheme,
    stride_scheme,
)
from repro.kernel import (
    Acquire,
    Barrier,
    BarrierWait,
    Checkpoint,
    Compute,
    DiskSpec,
    Gang,
    Kernel,
    KernelLock,
    MachineConfig,
    NicSpec,
    Process,
    ProcessState,
    ReadFile,
    Release,
    SendNetwork,
    SetWorkingSet,
    Sleep,
    Spawn,
    WaitChildren,
    WriteFile,
    WriteMetadata,
)
from repro.faults import (
    CpuAdd,
    CpuRemove,
    DiskFailure,
    DiskTransient,
    FaultInjector,
    FaultPlan,
    InvariantWatchdog,
    MemoryLoss,
)
from repro.metrics import job_results, mean_response_us, normalize
from repro.sim import Engine

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "Resource",
    "ResourceLevels",
    "SPU",
    "SPURegistry",
    "SharingPolicy",
    "NeverShare",
    "AlwaysShare",
    "ShareIdle",
    "EqualShareContract",
    "WeightedContract",
    "SchemeConfig",
    "IsolationParams",
    "DiskSchedPolicy",
    "smp_scheme",
    "quota_scheme",
    "piso_scheme",
    "stride_scheme",
    "scheme_by_name",
    # kernel
    "Kernel",
    "MachineConfig",
    "DiskSpec",
    "NicSpec",
    "Process",
    "ProcessState",
    "KernelLock",
    "Barrier",
    "Gang",
    "Checkpoint",
    "SendNetwork",
    "Compute",
    "SetWorkingSet",
    "ReadFile",
    "WriteFile",
    "WriteMetadata",
    "Sleep",
    "Spawn",
    "WaitChildren",
    "BarrierWait",
    "Acquire",
    "Release",
    # faults
    "FaultPlan",
    "FaultInjector",
    "InvariantWatchdog",
    "DiskTransient",
    "DiskFailure",
    "CpuRemove",
    "CpuAdd",
    "MemoryLoss",
    # sim & metrics
    "Engine",
    "job_results",
    "mean_response_us",
    "normalize",
]
