"""``python -m repro.bench`` — measure, report, and archive performance.

Writes ``BENCH_parallel.json`` (events/sec on the hot path vs the
checked-in baseline, per-experiment wall clock, sweep scaling) and
exits 1 if the serial and parallel sweeps ever disagree on results.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List

from repro.bench import SCALING_WORKERS, format_report, run_bench


def main(argv: List[str] = sys.argv[1:]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench",
        description="Benchmark the simulator hot path and the parallel"
        " sweep executor; write BENCH_parallel.json.",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="fast subset: quick experiments only, one hot-path rep",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="base RNG seed for every measured run (default: 0)",
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="worker count for the sweep-scaling stage, matching the"
        " other subcommands (0 = auto: measure the standard"
        f" {'/'.join(str(w) for w in SCALING_WORKERS)}-worker ladder)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default="BENCH_parallel.json",
        help="where to write the results (default: BENCH_parallel.json)",
    )
    args = parser.parse_args(argv)

    workers = SCALING_WORKERS if args.workers == 0 else (args.workers,)
    payload = run_bench(quick=args.quick, seed=args.seed, workers=workers)
    with open(args.json, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")

    print(format_report(payload))
    print(f"written to {args.json}")
    diverged = (
        payload["sweep"]["divergence"]
        or payload.get("fleet", {}).get("divergence")
    )
    return 1 if diverged else 0


if __name__ == "__main__":
    raise SystemExit(main())
