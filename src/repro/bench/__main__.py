"""``python -m repro.bench`` — measure, report, and archive performance.

Writes ``BENCH_parallel.json`` (events/sec on the hot-path probes vs
their checked-in baselines, per-experiment wall clock, sweep scaling
with per-stage overhead) and exits 1 if the serial and parallel sweeps
ever disagree on results, or — on a host with at least 4 CPUs — if the
4-worker sweep speedup falls below ``--min-speedup``.  On smaller
hosts the speedup gate prints a warning and is skipped: with fewer
cores than workers there is no parallelism to measure, only
oversubscription.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List

from repro.bench import MIN_SPEEDUP, SCALING_WORKERS, format_report, run_bench


def main(argv: List[str] = sys.argv[1:]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench",
        description="Benchmark the simulator hot path and the parallel"
        " sweep executor; write BENCH_parallel.json.",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="fast subset: quick experiments only, one hot-path rep",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="base RNG seed for every measured run (default: 0)",
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="worker count for the sweep-scaling stage, matching the"
        " other subcommands (0 = auto: measure the standard"
        f" {'/'.join(str(w) for w in SCALING_WORKERS)}-worker ladder)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default="BENCH_parallel.json",
        help="where to write the results (default: BENCH_parallel.json)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=MIN_SPEEDUP,
        help="fail if the 4-worker sweep speedup is below this on a"
        f" >=4-core host (default: {MIN_SPEEDUP}; 0 disables the gate)",
    )
    parser.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=False,
        help="answer unchanged sweep cells from the content-addressed"
        " sweep cache; a warm re-run then skips every experiment and"
        " fleet computation (default: --no-cache)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="sweep-cache store root (default: $REPRO_CACHE_DIR or"
        " .repro-cache)",
    )
    args = parser.parse_args(argv)

    workers = SCALING_WORKERS if args.workers == 0 else (args.workers,)
    payload = run_bench(quick=args.quick, seed=args.seed, workers=workers,
                        cache=args.cache, cache_dir=args.cache_dir)
    with open(args.json, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")

    print(format_report(payload))
    print(f"written to {args.json}")
    diverged = (
        payload["sweep"]["divergence"]
        or payload.get("fleet", {}).get("divergence")
    )
    if diverged:
        return 1

    four = payload["sweep"]["workers"].get("4")
    if args.min_speedup > 0 and four is not None:
        cpus = payload["host"]["cpu_count"] or 1
        if payload["cache"]["hits"] > 0:
            print(
                "WARNING: speedup gate skipped — cells were answered from"
                " the sweep cache, so the scaling numbers measure the"
                " cache, not the workers"
            )
        elif cpus < 4:
            print(
                f"WARNING: speedup gate skipped — host has {cpus} CPU(s),"
                " fewer than the 4 workers measured"
            )
        elif four["speedup"] < args.min_speedup:
            print(
                f"FAIL: 4-worker sweep speedup {four['speedup']}x is below"
                f" the {args.min_speedup}x floor"
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
