"""The performance harness behind ``python -m repro.bench``.

Three measurements, one JSON artifact (``BENCH_parallel.json``):

* **hot path** — events/sec through the simulator core, on a fixed
  probe (the Pmake8 unbalanced placement under SMP and PIso).  The
  checked-in :data:`BASELINE_EVENTS_PER_SEC` is the same probe measured
  on the pre-optimisation tree, so the report shows the optimisation
  pass's improvement and gives future PRs a trajectory to beat.
* **per-experiment wall clock** — serial seconds for each registered
  experiment.
* **sweep scaling** — the experiment sweep run serially and through
  :func:`repro.parallel.run_sweep` at increasing worker counts, with a
  byte-identity check (canonical JSON of every experiment's records)
  between the serial and parallel results.  Any divergence is a
  determinism bug and fails the bench.
* **fleet failover cells** — the smoke fleet (one whole-machine crash,
  SLO failover) per scheme, run in-process and through the sweep
  executor, with the same byte-identity requirement on the records.

Wall-clock numbers are hardware-dependent by nature; the JSON records
the host's CPU count alongside them so trajectories are only compared
like-for-like.
"""

from __future__ import annotations

import os
import platform
import time
from typing import Any, Dict, List, Optional

from repro.api import ExperimentSpec, SimulationSpec, SpuSpec, build, names, run_experiment
from repro.core.schemes import piso_scheme, smp_scheme
from repro.parallel import run_sweep, values

#: The hot-path probe measured on the pre-optimisation tree (commit
#: df5f0a7, 1-CPU container, CPython 3.11): best of 3.  The probe is
#: deterministic — only the wall clock under it changes.
BASELINE_EVENTS_PER_SEC = 43263

#: Worker counts the sweep-scaling stage measures.
SCALING_WORKERS = (2, 4)


def _hot_path_probe(seed: int = 0) -> int:
    """One probe pass; returns events executed (a fixed, seed-pure count)."""
    from repro.experiments.pmake8 import DEFAULT_PMAKE, LIGHT_SPUS, N_SPUS
    from repro.workloads.pmake import create_pmake_files, pmake_job

    events = 0
    for scheme in (smp_scheme(), piso_scheme()):
        sim = build(SimulationSpec(
            ncpus=8,
            memory_mb=44,
            scheme=scheme,
            spus=[SpuSpec(f"user{i + 1}", swap_mount=i) for i in range(N_SPUS)],
            disks=N_SPUS,
            seed=seed,
        ))
        for i, spu in enumerate(sim.spus):
            njobs = 1 if i in LIGHT_SPUS else 2
            for j in range(njobs):
                files = create_pmake_files(
                    sim.fs, mount=i, params=DEFAULT_PMAKE,
                    job_name=f"spu{i + 1}-job{j}",
                )
                sim.spawn(
                    pmake_job(files, DEFAULT_PMAKE), spu,
                    name=f"pmake-spu{i + 1}-{j}",
                )
        events += sim.run()
    return events


def bench_hot_path(reps: int = 3, seed: int = 0) -> Dict[str, Any]:
    """Best-of-``reps`` events/sec on the fixed probe."""
    best_s = float("inf")
    events = 0
    for _ in range(reps):
        start = time.perf_counter()
        events = _hot_path_probe(seed=seed)
        best_s = min(best_s, time.perf_counter() - start)
    events_per_sec = events / best_s
    return {
        "events": events,
        "seconds": round(best_s, 4),
        "events_per_sec": round(events_per_sec, 1),
        "baseline_events_per_sec": BASELINE_EVENTS_PER_SEC,
        "improvement_percent": round(
            100.0 * (events_per_sec / BASELINE_EVENTS_PER_SEC - 1.0), 1
        ),
    }


def bench_experiments(sections: List[str], seed: int = 0) -> Dict[str, Any]:
    """Serial wall clock per experiment (also the serial sweep total)."""
    per_figure: Dict[str, Any] = {}
    canonical: Dict[str, str] = {}
    total = 0.0
    for name in sections:
        start = time.perf_counter()
        result = run_experiment(ExperimentSpec(name=name, seed=seed))
        elapsed = time.perf_counter() - start
        total += elapsed
        per_figure[name] = {"seconds": round(elapsed, 3)}
        canonical[name] = result.canonical_json()
    return {"per_figure": per_figure, "serial_seconds": round(total, 3),
            "canonical": canonical}


def bench_sweep_scaling(
    sections: List[str],
    serial_canonical: Dict[str, str],
    seed: int = 0,
    workers: tuple = SCALING_WORKERS,
) -> Dict[str, Any]:
    """The same sweep through the executor at each worker count.

    Results must match the serial run byte-for-byte; ``divergence``
    names any experiment whose canonical JSON differs.
    """
    payloads = [ExperimentSpec(name=name, seed=seed) for name in sections]
    out: Dict[str, Any] = {"workers": {}, "divergence": []}
    for n in workers:
        start = time.perf_counter()
        outcomes = run_sweep(run_experiment, payloads, max_workers=n)
        results = values(outcomes)
        elapsed = time.perf_counter() - start
        diverged = [
            r.name for r in results
            if r.canonical_json() != serial_canonical[r.name]
        ]
        out["workers"][str(n)] = {
            "seconds": round(elapsed, 3),
            "retried_cells": sum(o.retries for o in outcomes),
        }
        for name in diverged:
            if name not in out["divergence"]:
                out["divergence"].append(name)
    return out


def bench_fleet(seed: int = 0, workers: int = 2) -> Dict[str, Any]:
    """Fleet failover cells through the sweep executor, serial vs parallel.

    Runs the smoke fleet (one whole-machine crash) per scheme twice —
    in-process and fanned across workers — and compares the records
    byte-for-byte.  ``divergence`` names any scheme whose parallel
    record differs from the serial one; any entry is a determinism bug.
    """
    from repro.fleet.__main__ import smoke_spec
    from repro.fleet.runner import run_fleet_record

    schemes = ("smp", "piso")
    payloads = [smoke_spec(scheme=s, seed=seed).to_dict() for s in schemes]
    start = time.perf_counter()
    serial = [run_fleet_record(p) for p in payloads]
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    outcomes = run_sweep(run_fleet_record, payloads, max_workers=workers)
    parallel_s = time.perf_counter() - start
    parallel = values(outcomes)
    divergence = [
        scheme for scheme, a, b in zip(schemes, serial, parallel) if a != b
    ]
    return {
        "schemes": list(schemes),
        "serial_seconds": round(serial_s, 3),
        "parallel_seconds": round(parallel_s, 3),
        "digests": {r["scheme"]: r["digest"] for r in serial},
        "violations": sorted({v for r in serial for v in r["violations"]}),
        "divergence": divergence,
    }


def run_bench(
    quick: bool = False,
    seed: int = 0,
    reps: Optional[int] = None,
    workers: tuple = SCALING_WORKERS,
) -> Dict[str, Any]:
    """The full bench; returns the ``BENCH_parallel.json`` payload."""
    sections = names(quick_only=quick)
    reps = reps if reps is not None else (1 if quick else 3)

    hot = bench_hot_path(reps=reps, seed=seed)
    serial = bench_experiments(sections, seed=seed)
    scaling = bench_sweep_scaling(
        sections, serial["canonical"], seed=seed, workers=workers
    )
    fleet = bench_fleet(seed=seed)

    serial_s = serial["serial_seconds"]
    for stats in scaling["workers"].values():
        stats["speedup"] = round(serial_s / stats["seconds"], 2)

    return {
        "schema": "repro.bench/1",
        "quick": quick,
        "seed": seed,
        "hot_path": hot,
        "experiments": {
            "sections": sections,
            "per_figure": serial["per_figure"],
            "serial_seconds": serial_s,
        },
        "sweep": {
            "workers": scaling["workers"],
            "divergence": scaling["divergence"],
        },
        "fleet": fleet,
        "host": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
    }


def format_report(payload: Dict[str, Any]) -> str:
    hot = payload["hot_path"]
    lines = [
        f"hot path: {hot['events_per_sec']:,.0f} events/s"
        f" ({hot['events']} events in {hot['seconds']}s;"
        f" baseline {hot['baseline_events_per_sec']:,} ->"
        f" {hot['improvement_percent']:+.1f}%)",
        f"serial sweep: {payload['experiments']['serial_seconds']}s over"
        f" {len(payload['experiments']['sections'])} experiments",
    ]
    for name, stats in payload["experiments"]["per_figure"].items():
        lines.append(f"  {name}: {stats['seconds']}s")
    for n, stats in payload["sweep"]["workers"].items():
        retried = stats.get("retried_cells", 0)
        lines.append(
            f"sweep at {n} workers: {stats['seconds']}s"
            f" ({stats['speedup']}x; host has {payload['host']['cpu_count']}"
            " CPUs" + (f"; {retried} cell(s) retried" if retried else "") + ")"
        )
    divergence = payload["sweep"]["divergence"]
    lines.append(
        "serial-vs-parallel results: "
        + ("BYTE-IDENTICAL" if not divergence else f"DIVERGED: {divergence}")
    )
    fleet = payload.get("fleet")
    if fleet is not None:
        fleet_diverged = fleet["divergence"]
        lines.append(
            f"fleet failover cells ({'/'.join(fleet['schemes'])}):"
            f" serial {fleet['serial_seconds']}s,"
            f" parallel {fleet['parallel_seconds']}s; "
            + ("BYTE-IDENTICAL" if not fleet_diverged
               else f"DIVERGED: {fleet_diverged}")
            + (f"; violations: {fleet['violations']}"
               if fleet["violations"] else "")
        )
    return "\n".join(lines)
