"""The performance harness behind ``python -m repro.bench``.

Four measurements, one JSON artifact (``BENCH_parallel.json``,
schema ``repro.bench/3``):

* **hot path** — events/sec through the simulator core, over two fixed
  probes that stress opposite regimes:

  - ``pmake8`` — the Pmake8 unbalanced placement under SMP and PIso:
    batch work, every event does real kernel/scheduler/disk work.
  - ``interactive`` — four think/burst interactive users under PIso:
    long idle periods where the clock tick dominates, the regime the
    engine's idle fast-forward elides (elided ticks count as executed
    events — the simulated timeline is identical either way).

  Each probe carries its own pre-optimisation baseline; the headline
  ``events_per_sec`` is total events over total seconds across both.
* **per-experiment wall clock** — serial seconds for each registered
  experiment.
* **sweep scaling** — the experiment sweep run serially and through
  :class:`repro.parallel.Executor` at increasing worker counts, with a
  byte-identity check (canonical JSON of every experiment's records)
  between the serial and parallel results, and the executor's own
  stage attribution (dispatch vs compute vs merge seconds) recorded
  per worker count.  Any result divergence is a determinism bug and
  fails the bench.
* **fleet failover cells** — the smoke fleet (one whole-machine crash,
  SLO failover) per scheme, run in-process and through the sweep
  executor, with the same byte-identity requirement on the records.

All sweep-shaped stages (experiment sweep scaling, fleet cells) share
one persistent :class:`repro.parallel.WorkerPool`, so the bench pays
the fork cost once instead of once per stage; with ``--cache`` every
sweep cell is first looked up in the content-addressed sweep cache
(:class:`repro.parallel.SweepCache`), making a *warm* re-run skip all
experiment and fleet computation while producing byte-identical
records.  The hot-path probes always run — they *are* the measurement.

Schema migration (``repro.bench/2`` → ``/3``): the payload gained a
``stages`` map (per-stage wall seconds: ``hot_path``/``experiments``/
``sweep``/``fleet`` — compare a cold artifact's stage seconds against
a warm one's for the cold-vs-warm trajectory), a ``cache`` block
(enabled flag, hit/miss/put/error counts, ``hit_ratio``), and a
``pool`` block (processes forked, sweeps served — ``forks`` staying
flat while ``runs_served`` grows is the pool doing its job);
``experiments`` gained ``digests`` (short sha256 of each experiment's
canonical records, so two artifacts can be compared for byte-identity
without carrying the records) and ``cache_hits``;
``sweep.workers.<n>`` gained ``pool_reuse``/``spooled_payloads``/
``spool_bytes``/``cache_hits``/``cache_misses`` from
:class:`repro.parallel.SweepStats`.  Every ``/2`` field is still
present with unchanged meaning, so history stays comparable; cached
runs are marked by ``cache.enabled`` + nonzero ``cache.hits`` (compare
wall-clock trajectories cold-to-cold or warm-to-warm only — the
``--min-speedup`` gate already skips cached runs for that reason).

Schema migration (``repro.bench/1`` → ``/2``): ``hot_path`` gained a
``probes`` map (per-probe events/seconds/rate/baseline) — the old
flat fields now describe the *combined* run; ``sweep.workers.<n>``
gained ``dispatch_s``/``compute_s``/``merge_s``/``transport``/
``batch_size`` from :class:`repro.parallel.SweepStats`.  Consumers of
the v1 flat ``hot_path`` fields keep working; per-probe trajectories
must read ``hot_path.probes``.

Wall-clock numbers are hardware-dependent by nature; the JSON records
the host's CPU count alongside them so trajectories are only compared
like-for-like.
"""

from __future__ import annotations

import hashlib
import os
import platform
import time
from typing import Any, Dict, List, Optional

from repro.api import (
    ExperimentSpec,
    SimulationSpec,
    SpuSpec,
    build,
    names,
    run_experiment,
)
from repro.core.schemes import piso_scheme, smp_scheme
from repro.parallel import (
    Executor,
    SweepCache,
    SweepPlan,
    WorkerPool,
    closure_stats,
    values,
)

#: Per-probe events/sec measured on the pre-optimisation tree (1-CPU
#: container, CPython 3.11): best of 3 on the same probe definitions.
#: ``pmake8`` predates the calendar-queue engine (commit df5f0a7);
#: ``interactive`` was measured on the binary-heap tree the day the
#: probe was added.  The probes are deterministic — only the wall
#: clock under them changes.
BASELINES_EVENTS_PER_SEC = {
    "pmake8": 43263,
    "interactive": 65978,
}

#: Kept for v1 consumers: the original (pmake8) baseline.
BASELINE_EVENTS_PER_SEC = BASELINES_EVENTS_PER_SEC["pmake8"]

#: Worker counts the sweep-scaling stage measures.
SCALING_WORKERS = (2, 4)

#: Minimum acceptable 4-worker sweep speedup on a >=4-core host; CI
#: fails the bench below this (see ``python -m repro.bench --help``).
MIN_SPEEDUP = 1.2


def _pmake_probe(seed: int = 0) -> int:
    """Batch probe; returns events executed (a fixed, seed-pure count)."""
    from repro.experiments.pmake8 import DEFAULT_PMAKE, LIGHT_SPUS, N_SPUS
    from repro.workloads.pmake import create_pmake_files, pmake_job

    events = 0
    for scheme in (smp_scheme(), piso_scheme()):
        sim = build(SimulationSpec(
            ncpus=8,
            memory_mb=44,
            scheme=scheme,
            spus=[SpuSpec(f"user{i + 1}", swap_mount=i) for i in range(N_SPUS)],
            disks=N_SPUS,
            seed=seed,
        ))
        for i, spu in enumerate(sim.spus):
            njobs = 1 if i in LIGHT_SPUS else 2
            for j in range(njobs):
                files = create_pmake_files(
                    sim.fs, mount=i, params=DEFAULT_PMAKE,
                    job_name=f"spu{i + 1}-job{j}",
                )
                sim.spawn(
                    pmake_job(files, DEFAULT_PMAKE), spu,
                    name=f"pmake-spu{i + 1}-{j}",
                )
        events += sim.run()
    return events


def _interactive_probe(seed: int = 0) -> int:
    """Tick-dominated probe: mostly-idle interactive users.

    With 200 ms of think time between half-millisecond bursts, clock
    ticks outnumber useful events ~20:1 — the idle fast-forward elides
    the tick runs (counting them as executed), so this probe tracks
    the optimisation the batch probe cannot see.
    """
    from repro.workloads.interactive import InteractiveParams, interactive_user

    sim = build(SimulationSpec(
        ncpus=4,
        memory_mb=32,
        scheme=piso_scheme(),
        spus=[SpuSpec(f"user{i + 1}") for i in range(4)],
        disks=1,
        seed=seed,
    ))
    params = InteractiveParams(bursts=6000, think_ms=200.0, burst_ms=0.5)
    for i, spu in enumerate(sim.spus):
        sim.spawn(interactive_user(params), spu, name=f"int{i}")
    return sim.run()


_PROBES = {
    "pmake8": _pmake_probe,
    "interactive": _interactive_probe,
}


def bench_hot_path(reps: int = 3, seed: int = 0) -> Dict[str, Any]:
    """Best-of-``reps`` events/sec per probe, plus the combined headline."""
    probes: Dict[str, Any] = {}
    total_events = 0
    total_s = 0.0
    for name, probe in _PROBES.items():
        best_s = float("inf")
        events = 0
        for _ in range(reps):
            start = time.perf_counter()
            events = probe(seed=seed)
            best_s = min(best_s, time.perf_counter() - start)
        rate = events / best_s
        baseline = BASELINES_EVENTS_PER_SEC[name]
        probes[name] = {
            "events": events,
            "seconds": round(best_s, 4),
            "events_per_sec": round(rate, 1),
            "baseline_events_per_sec": baseline,
            "improvement_percent": round(100.0 * (rate / baseline - 1.0), 1),
        }
        total_events += events
        total_s += best_s
    combined = total_events / total_s
    combined_baseline = round(
        total_events / sum(
            probes[n]["events"] / BASELINES_EVENTS_PER_SEC[n] for n in probes
        ),
        1,
    )
    return {
        "probes": probes,
        # v1-shaped flat fields, now describing the combined run.
        "events": total_events,
        "seconds": round(total_s, 4),
        "events_per_sec": round(combined, 1),
        "baseline_events_per_sec": combined_baseline,
        "improvement_percent": round(
            100.0 * (combined / combined_baseline - 1.0), 1
        ),
    }


def bench_experiments(
    sections: List[str], seed: int = 0, cache: Optional[SweepCache] = None,
) -> Dict[str, Any]:
    """Serial wall clock per experiment (also the serial sweep total).

    With a ``cache``, each cell is answered from the store when its
    (name, seed, code) key is present — the warm-run fast path — and
    recorded on a miss; the result bytes are identical either way.
    """
    per_figure: Dict[str, Any] = {}
    canonical: Dict[str, str] = {}
    digests: Dict[str, str] = {}
    total = 0.0
    hits = 0
    executor = Executor(SweepPlan(max_workers=1), cache=cache)
    for name in sections:
        start = time.perf_counter()
        outcomes = executor.run(
            run_experiment, [ExperimentSpec(name=name, seed=seed)]
        )
        elapsed = time.perf_counter() - start
        result = values(outcomes)[0]
        hits += executor.stats.cache_hits
        total += elapsed
        per_figure[name] = {"seconds": round(elapsed, 3)}
        canonical[name] = result.canonical_json()
        digests[name] = hashlib.sha256(
            canonical[name].encode("utf-8")
        ).hexdigest()[:16]
    return {"per_figure": per_figure, "serial_seconds": round(total, 3),
            "canonical": canonical, "digests": digests, "cache_hits": hits}


def bench_sweep_scaling(
    sections: List[str],
    serial_canonical: Dict[str, str],
    seed: int = 0,
    workers: tuple = SCALING_WORKERS,
    pool: Optional[WorkerPool] = None,
    cache: Optional[SweepCache] = None,
) -> Dict[str, Any]:
    """The same sweep through the executor at each worker count.

    Results must match the serial run byte-for-byte; ``divergence``
    names any experiment whose canonical JSON differs.  Each worker
    count also records the executor's stage attribution — parent time
    dispatching work, summed worker compute time, parent time merging
    results — so dispatch/merge overhead has its own trajectory.
    ``pool`` shares worker processes across the ladder (and with the
    fleet stage); ``cache`` answers unchanged cells from the store
    (their bytes came from a pure run, so the identity check holds
    vacuously rather than falsely).
    """
    payloads = [ExperimentSpec(name=name, seed=seed) for name in sections]
    out: Dict[str, Any] = {"workers": {}, "divergence": []}
    for n in workers:
        executor = Executor(SweepPlan(max_workers=n), pool=pool, cache=cache)
        start = time.perf_counter()
        outcomes = executor.run(run_experiment, payloads)
        results = values(outcomes)
        elapsed = time.perf_counter() - start
        diverged = [
            r.name for r in results
            if r.canonical_json() != serial_canonical[r.name]
        ]
        stats = executor.stats
        out["workers"][str(n)] = {
            "seconds": round(elapsed, 3),
            "dispatch_s": round(stats.dispatch_s, 4),
            "compute_s": round(stats.compute_s, 4),
            "merge_s": round(stats.merge_s, 4),
            "transport": stats.transport,
            "batch_size": stats.batch_size,
            "shm_spills": stats.shm_spills,
            "retried_cells": stats.retried_cells,
            "pool_reuse": stats.pool_reuse,
            "spooled_payloads": stats.spooled_payloads,
            "spool_bytes": stats.spool_bytes,
            "cache_hits": stats.cache_hits,
            "cache_misses": stats.cache_misses,
        }
        for name in diverged:
            if name not in out["divergence"]:
                out["divergence"].append(name)
    return out


def bench_fleet(
    seed: int = 0, workers: int = 2,
    pool: Optional[WorkerPool] = None, cache: Optional[SweepCache] = None,
) -> Dict[str, Any]:
    """Fleet failover cells through the sweep executor, serial vs parallel.

    Runs the smoke fleet (one whole-machine crash) per scheme twice —
    in-process and fanned across workers — and compares the records
    byte-for-byte.  ``divergence`` names any scheme whose parallel
    record differs from the serial one; any entry is a determinism bug.
    With a ``cache`` both legs share the same content addresses, so
    whichever leg runs first populates the store and the other is
    answered from it — the identity check then holds by construction
    (the cached bytes *are* a previous pure run's).  The honest
    serial-vs-worker comparison comes from uncached runs; CI keeps one.
    """
    from repro.fleet.__main__ import smoke_spec
    from repro.fleet.runner import run_fleet_record

    schemes = ("smp", "piso")
    payloads = [smoke_spec(scheme=s, seed=seed).to_dict() for s in schemes]
    serial_executor = Executor(SweepPlan(max_workers=1), cache=cache)
    start = time.perf_counter()
    serial = values(serial_executor.run(run_fleet_record, payloads))
    serial_s = time.perf_counter() - start
    serial_hits = serial_executor.stats.cache_hits
    executor = Executor(SweepPlan(max_workers=workers), pool=pool, cache=cache)
    start = time.perf_counter()
    outcomes = executor.run(run_fleet_record, payloads)
    parallel_s = time.perf_counter() - start
    parallel = values(outcomes)
    divergence = [
        scheme for scheme, a, b in zip(schemes, serial, parallel) if a != b
    ]
    return {
        "schemes": list(schemes),
        "serial_seconds": round(serial_s, 3),
        "parallel_seconds": round(parallel_s, 3),
        "digests": {r["scheme"]: r["digest"] for r in serial},
        "violations": sorted({v for r in serial for v in r["violations"]}),
        "divergence": divergence,
        "cache_hits": serial_hits + executor.stats.cache_hits,
        "pool_reuse": executor.stats.pool_reuse,
    }


def run_bench(
    quick: bool = False,
    seed: int = 0,
    reps: Optional[int] = None,
    workers: tuple = SCALING_WORKERS,
    cache: bool = False,
    cache_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """The full bench; returns the ``BENCH_parallel.json`` payload.

    One :class:`WorkerPool` is shared by every sweep-shaped stage (the
    scaling ladder and the fleet cells) — the fork cost is paid once
    per bench, and ``pool.forks`` vs ``pool.runs_served`` in the
    payload shows the reuse.  ``cache=True`` opens the sweep cache and
    threads it through every stage except the hot-path probes.
    """
    sections = names(quick_only=quick)
    reps = reps if reps is not None else (1 if quick else 3)

    sweep_cache = SweepCache(cache_dir) if cache else None
    pool = WorkerPool(max_workers=max(tuple(workers) + (2,)))
    stages: Dict[str, float] = {}
    try:
        start = time.perf_counter()
        hot = bench_hot_path(reps=reps, seed=seed)
        stages["hot_path"] = round(time.perf_counter() - start, 3)

        start = time.perf_counter()
        serial = bench_experiments(sections, seed=seed, cache=sweep_cache)
        stages["experiments"] = round(time.perf_counter() - start, 3)

        start = time.perf_counter()
        scaling = bench_sweep_scaling(
            sections, serial["canonical"], seed=seed, workers=workers,
            pool=pool, cache=sweep_cache,
        )
        stages["sweep"] = round(time.perf_counter() - start, 3)

        start = time.perf_counter()
        fleet = bench_fleet(seed=seed, pool=pool, cache=sweep_cache)
        stages["fleet"] = round(time.perf_counter() - start, 3)
        pool_payload = {"forks": pool.forks, "runs_served": pool.runs_served}
    finally:
        pool.shutdown()

    serial_s = serial["serial_seconds"]
    for stats in scaling["workers"].values():
        stats["speedup"] = round(serial_s / max(stats["seconds"], 1e-9), 2)

    if sweep_cache is not None:
        cache_stats = sweep_cache.stats_dict()
        probed = cache_stats["hits"] + cache_stats["misses"]
        cache_payload = {
            "enabled": True,
            "dir": sweep_cache.root,
            "hit_ratio": round(cache_stats["hits"] / probed, 4) if probed
            else 0.0,
        }
        cache_payload.update(cache_stats)
        # How many key derivations used a function-precise closure
        # digest vs the whole-tree fallback (see repro.parallel.cache).
        cache_payload["closure"] = closure_stats()
    else:
        cache_payload = {"enabled": False, "hits": 0, "misses": 0,
                         "errors": 0, "puts": 0, "hit_ratio": 0.0,
                         "closure": {"precise": 0, "fallback": 0}}

    return {
        "schema": "repro.bench/3",
        "quick": quick,
        "seed": seed,
        "hot_path": hot,
        "experiments": {
            "sections": sections,
            "per_figure": serial["per_figure"],
            "serial_seconds": serial_s,
            "digests": serial["digests"],
            "cache_hits": serial["cache_hits"],
        },
        "sweep": {
            "workers": scaling["workers"],
            "divergence": scaling["divergence"],
        },
        "fleet": fleet,
        "stages": stages,
        "cache": cache_payload,
        "pool": pool_payload,
        "host": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
    }


def format_report(payload: Dict[str, Any]) -> str:
    hot = payload["hot_path"]
    lines = [
        f"hot path: {hot['events_per_sec']:,.0f} events/s combined"
        f" ({hot['events']} events in {hot['seconds']}s;"
        f" baseline {hot['baseline_events_per_sec']:,.0f} ->"
        f" {hot['improvement_percent']:+.1f}%)",
    ]
    for name, probe in hot.get("probes", {}).items():
        lines.append(
            f"  {name}: {probe['events_per_sec']:,.0f} events/s"
            f" (baseline {probe['baseline_events_per_sec']:,} ->"
            f" {probe['improvement_percent']:+.1f}%)"
        )
    lines.append(
        f"serial sweep: {payload['experiments']['serial_seconds']}s over"
        f" {len(payload['experiments']['sections'])} experiments"
    )
    for name, stats in payload["experiments"]["per_figure"].items():
        lines.append(f"  {name}: {stats['seconds']}s")
    for n, stats in payload["sweep"]["workers"].items():
        retried = stats.get("retried_cells", 0)
        lines.append(
            f"sweep at {n} workers: {stats['seconds']}s"
            f" ({stats['speedup']}x; host has {payload['host']['cpu_count']}"
            " CPUs" + (f"; {retried} cell(s) retried" if retried else "") + ")"
        )
        if "dispatch_s" in stats:
            lines.append(
                f"  stages: dispatch {stats['dispatch_s']}s,"
                f" compute {stats['compute_s']}s (worker-summed),"
                f" merge {stats['merge_s']}s"
                f" [{stats.get('transport', '?')},"
                f" batch={stats.get('batch_size', '?')}]"
            )
    divergence = payload["sweep"]["divergence"]
    lines.append(
        "serial-vs-parallel results: "
        + ("BYTE-IDENTICAL" if not divergence else f"DIVERGED: {divergence}")
    )
    fleet = payload.get("fleet")
    if fleet is not None:
        fleet_diverged = fleet["divergence"]
        lines.append(
            f"fleet failover cells ({'/'.join(fleet['schemes'])}):"
            f" serial {fleet['serial_seconds']}s,"
            f" parallel {fleet['parallel_seconds']}s; "
            + ("BYTE-IDENTICAL" if not fleet_diverged
               else f"DIVERGED: {fleet_diverged}")
            + (f"; violations: {fleet['violations']}"
               if fleet["violations"] else "")
        )
    pool = payload.get("pool")
    if pool is not None:
        lines.append(
            f"worker pool: {pool['forks']} process(es) forked for"
            f" {pool['runs_served']} sweep(s)"
        )
    cache = payload.get("cache")
    if cache is not None and cache.get("enabled"):
        lines.append(
            f"sweep cache: {cache['hits']} hit(s), {cache['misses']}"
            f" miss(es), {cache['puts']} stored"
            f" (hit ratio {cache['hit_ratio']:.0%})"
        )
    return "\n".join(lines)
