"""The pmake workload: a parallel make of many small compiles.

A pmake job is a master process that runs compile tasks in waves of
``parallelism``.  Each compile task reads a scattered source file,
computes, writes an object file, and issues the repeated single-sector
metadata writes the paper calls out ("many repeated writes of meta-data
to a single sector", Section 4.5).  Source and object files are laid
out *fragmented*, so a pmake's disk requests are small and irregular —
exactly what loses to a streaming copy under position-only scheduling.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List

from repro.fs.filesystem import FileSystem
from repro.fs.layout import File
from repro.kernel.syscalls import (
    Behavior,
    Compute,
    ReadFile,
    SetWorkingSet,
    Spawn,
    WaitChildren,
    WriteFile,
    WriteMetadata,
)
from repro.sim.units import KB, msecs
from repro.workloads.base import chunks, waves


@dataclass(frozen=True)
class PmakeParams:
    """Knobs for one pmake job."""

    #: Number of compile tasks in the job.
    n_tasks: int = 8
    #: Simultaneous compiles ("two parallel compiles each", Table 1).
    parallelism: int = 2
    #: CPU time per compile.
    compile_ms: float = 400.0
    #: Source / object file sizes.
    src_kb: int = 48
    obj_kb: int = 32
    #: Compiler working set (pages) while compiling; 0 disables paging.
    ws_pages: int = 0
    touches_per_ms: float = 4.0
    #: Pages brought in per fault (page-in plus read-around).
    fault_cluster_pages: int = 16
    #: Metadata writes per task (all to the job's hot metadata sector).
    metadata_writes: int = 3
    #: Read chunk size: compiles read sources in pieces, interleaving
    #: with other tasks' I/O.
    read_chunk_kb: int = 16
    #: Fragmented-extent size for source/object layout.
    extent_sectors: int = 16


_job_counter = itertools.count(1)


@dataclass
class PmakeFiles:
    """The on-disk footprint of one pmake job."""

    sources: List[File]
    objects: List[File]
    #: Every task's metadata writes go to this file's metadata sector.
    makefile: File


def create_pmake_files(
    fs: FileSystem, mount: int, params: PmakeParams, job_name: str = ""
) -> PmakeFiles:
    """Lay out one pmake job's files on ``mount``."""
    job = job_name or f"pmake{next(_job_counter)}"
    makefile = fs.create(mount, f"{job}/Makefile", 4 * KB, fragmented=True)
    sources, objects = [], []
    for t in range(params.n_tasks):
        sources.append(
            fs.create(
                mount,
                f"{job}/src{t}.c",
                params.src_kb * KB,
                fragmented=True,
                extent_sectors=params.extent_sectors,
            )
        )
        objects.append(
            fs.create(
                mount,
                f"{job}/src{t}.o",
                params.obj_kb * KB,
                fragmented=True,
                extent_sectors=params.extent_sectors,
            )
        )
    return PmakeFiles(sources, objects, makefile)


def compile_task(src: File, obj: File, makefile: File, params: PmakeParams) -> Behavior:
    """One compile: read source, compute, write object, update metadata."""
    if params.ws_pages:
        yield SetWorkingSet(
            params.ws_pages,
            touches_per_ms=params.touches_per_ms,
            fault_cluster_pages=params.fault_cluster_pages,
        )
    for offset, nbytes in chunks(src.size_bytes, params.read_chunk_kb * KB):
        yield ReadFile(src, offset, nbytes)
    yield Compute(msecs(params.compile_ms))
    yield WriteFile(obj, 0, obj.size_bytes)
    for _ in range(params.metadata_writes):
        yield WriteMetadata(makefile)


def pmake_job(files: PmakeFiles, params: PmakeParams) -> Behavior:
    """The master process: run compiles in waves, then a final link pass."""
    tasks = list(zip(files.sources, files.objects))
    for wave in waves(tasks, params.parallelism):
        for src, obj in wave:
            yield Spawn(
                compile_task(src, obj, files.makefile, params),
                name=f"cc:{src.name}",
            )
        yield WaitChildren()
    # The "link" step: re-read the objects and write the result's
    # metadata, serial and cheap.
    for obj in files.objects:
        yield ReadFile(obj, 0, obj.size_bytes)
    yield Compute(msecs(params.compile_ms / 4))
    yield WriteMetadata(files.makefile)
