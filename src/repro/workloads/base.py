"""Shared helpers for workload generators."""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple, TypeVar

T = TypeVar("T")


def waves(items: Sequence[T], width: int) -> Iterator[List[T]]:
    """Split ``items`` into consecutive groups of at most ``width``.

    A pmake with parallelism N runs its compile tasks in waves of N.
    """
    if width <= 0:
        raise ValueError(f"wave width must be positive, got {width}")
    for start in range(0, len(items), width):
        yield list(items[start : start + width])


def chunks(total_bytes: int, chunk_bytes: int) -> Iterator[Tuple[int, int]]:
    """Yield ``(offset, nbytes)`` pairs covering ``total_bytes``."""
    if chunk_bytes <= 0:
        raise ValueError(f"chunk size must be positive, got {chunk_bytes}")
    offset = 0
    while offset < total_bytes:
        n = min(chunk_bytes, total_bytes - offset)
        yield offset, n
        offset += n
