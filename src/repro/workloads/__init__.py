"""Workload generators calibrated to the paper's applications."""

from repro.workloads.base import chunks, waves
from repro.workloads.copy import CopyParams, copy_job, create_copy_files
from repro.workloads.interactive import (
    InteractiveParams,
    bulk_sender,
    burst_latencies_ms,
    cpu_hog,
    interactive_excess_latency_us,
    interactive_user,
    percentile,
    rpc_client,
)
from repro.workloads.pmake import (
    PmakeFiles,
    PmakeParams,
    compile_task,
    create_pmake_files,
    pmake_job,
)
from repro.workloads.scientific import (
    OceanParams,
    SimulatorParams,
    ocean_processes,
    simulator_process,
)
from repro.workloads.trace import (
    TraceError,
    load_trace,
    parse_trace,
    trace_behavior,
)

__all__ = [
    "chunks",
    "waves",
    "PmakeParams",
    "PmakeFiles",
    "create_pmake_files",
    "pmake_job",
    "compile_task",
    "CopyParams",
    "create_copy_files",
    "copy_job",
    "OceanParams",
    "ocean_processes",
    "SimulatorParams",
    "simulator_process",
    "InteractiveParams",
    "interactive_user",
    "interactive_excess_latency_us",
    "cpu_hog",
    "rpc_client",
    "bulk_sender",
    "burst_latencies_ms",
    "percentile",
    "TraceError",
    "parse_trace",
    "trace_behavior",
    "load_trace",
]
