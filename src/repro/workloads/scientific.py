"""Compute-intensive scientific/engineering applications (Section 4.3).

* **Ocean** — a SPLASH-2-style parallel application: N processes
  iterate over barrier-separated phases, so one slow process drags the
  gang (which is why CPU interference hurts it disproportionately on a
  stock SMP kernel).
* **Flashlite** and **VCS** — long-running single-process simulators
  with "kernel time only at the start-up phase": one big compute after
  a short startup burst.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.kernel.locks import Barrier
from repro.kernel.syscalls import Behavior, BarrierWait, Compute, SetWorkingSet
from repro.sim.units import msecs


@dataclass(frozen=True)
class OceanParams:
    """A gang of ``nprocs`` iterating ``phases`` barrier-separated steps."""

    nprocs: int = 4
    phases: int = 20
    phase_ms: float = 100.0
    ws_pages: int = 0
    touches_per_ms: float = 4.0


def ocean_processes(params: OceanParams) -> List[Behavior]:
    """Behaviours for one Ocean gang (spawn each in the same SPU)."""
    barrier = Barrier(params.nprocs, name="ocean")

    def worker() -> Behavior:
        if params.ws_pages:
            yield SetWorkingSet(params.ws_pages, touches_per_ms=params.touches_per_ms)
        for _ in range(params.phases):
            yield Compute(msecs(params.phase_ms))
            yield BarrierWait(barrier)

    return [worker() for _ in range(params.nprocs)]


@dataclass(frozen=True)
class SimulatorParams:
    """A single-process compute job (Flashlite, VCS)."""

    total_ms: float
    startup_ms: float = 50.0
    ws_pages: int = 0
    touches_per_ms: float = 4.0


def simulator_process(params: SimulatorParams) -> Behavior:
    """One Flashlite/VCS-style job: startup burst, then pure compute."""
    if params.ws_pages:
        yield SetWorkingSet(params.ws_pages, touches_per_ms=params.touches_per_ms)
    yield Compute(msecs(params.startup_ms))
    yield Compute(msecs(params.total_ms))
