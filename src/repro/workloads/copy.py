"""File-copy workloads.

A copy reads a source file sequentially and writes a destination of the
same size — both laid out contiguously, so a copy's disk requests are
long runs of consecutive sectors.  With position-only scheduling those
runs "can lock out the more random requests" of other SPUs, which is
the pathology Tables 3 and 4 measure.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Tuple

from repro.fs.filesystem import FileSystem
from repro.fs.layout import File
from repro.kernel.syscalls import Behavior, ReadFile, WriteFile, WriteMetadata
from repro.sim.units import KB
from repro.workloads.base import chunks


@dataclass(frozen=True)
class CopyParams:
    """Knobs for a copy job."""

    size_bytes: int
    #: Bytes moved per read/write iteration (cp's buffer size).
    chunk_kb: int = 16


_copy_counter = itertools.count(1)


def create_copy_files(
    fs: FileSystem,
    mount: int,
    params: CopyParams,
    name: str = "",
    at_sector: int = None,
) -> Tuple[File, File]:
    """Lay out source and destination contiguously on ``mount``.

    ``at_sector`` places the pair at a chosen disk region so the seek
    distance between concurrent jobs is controlled by the experiment.
    """
    label = name or f"copy{next(_copy_counter)}"
    src = fs.create(mount, f"{label}/src", params.size_bytes, at_sector=at_sector)
    dst = fs.create(mount, f"{label}/dst", params.size_bytes)
    return src, dst


def copy_job(src: File, dst: File, params: CopyParams) -> Behavior:
    """Sequentially read ``src`` and write ``dst`` in chunks."""
    for offset, nbytes in chunks(params.size_bytes, params.chunk_kb * KB):
        yield ReadFile(src, offset, nbytes)
        yield WriteFile(dst, offset, nbytes)
    yield WriteMetadata(dst)
