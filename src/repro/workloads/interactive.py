"""Interactive and server-style workload generators.

The paper's motivation is a server shared by many users whose
interactive experience collapses under someone else's batch load.
These generators model that class of process:

* :func:`interactive_user` — sleep (think time), then a short CPU
  burst, repeatedly.  Wake-up latency under load is the paper's
  "response time performance isolation" concern (Section 3.1).
* :func:`cpu_hog` — a long pure-compute job (the batch antagonist).
* :func:`rpc_client` — small network sends with think time.
* :func:`bulk_sender` — a large transfer streamed in big messages.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import List

from repro.kernel.syscalls import Behavior, Checkpoint, Compute, SendNetwork, Sleep
from repro.sim.units import KB, msecs


@dataclass(frozen=True)
class InteractiveParams:
    """An interactive session: ``bursts`` iterations of think+burst."""

    bursts: int = 100
    think_ms: float = 20.0
    burst_ms: float = 1.0

    @property
    def ideal_us(self) -> int:
        """Response time with zero queueing: every burst runs at once."""
        return self.bursts * msecs(self.think_ms + self.burst_ms)


def interactive_user(params: InteractiveParams = InteractiveParams()) -> Behavior:
    """Think, then compute briefly; repeat.

    Each burst is bracketed by checkpoints (``wake``/``done``), so
    :func:`burst_latencies_ms` can recover the full per-burst latency
    distribution from the finished process.
    """
    for _ in range(params.bursts):
        yield Sleep(msecs(params.think_ms))
        yield Checkpoint("wake")
        yield Compute(msecs(params.burst_ms))
        yield Checkpoint("done")


def burst_latencies_ms(proc, params: InteractiveParams) -> List[float]:
    """Per-burst wake-to-done latencies (ms) from checkpoint markers.

    The uncontended latency is ``burst_ms``; anything above it is
    queueing/revocation delay — the paper's interactive response-time
    concern, as a distribution rather than a mean.
    """
    wakes = [t for label, t in proc.checkpoints if label == "wake"]
    dones = [t for label, t in proc.checkpoints if label == "done"]
    if len(wakes) != len(dones):
        raise ValueError("mismatched wake/done checkpoints (unfinished run?)")
    return [(d - w) / 1000.0 for w, d in zip(wakes, dones)]


def percentile(values: List[float], fraction: float) -> float:
    """Nearest-rank percentile (``fraction`` in (0, 1])."""
    if not values:
        raise ValueError("no values")
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    ordered = sorted(values)
    rank = max(1, round(fraction * len(ordered)))
    return ordered[rank - 1]


def cpu_hog(total_ms: float) -> Behavior:
    """A long batch computation."""
    yield Compute(msecs(total_ms))


def rpc_client(
    count: int = 200, nbytes: int = 2 * KB, think_ms: float = 1.0, nic: int = 0
) -> Behavior:
    """Small request messages with think time between them."""
    for _ in range(count):
        yield SendNetwork(nbytes, nic=nic)
        yield Sleep(msecs(think_ms))


def bulk_sender(
    total_bytes: int, message_bytes: int = 64 * KB, nic: int = 0
) -> Behavior:
    """Stream a large transfer in big messages."""
    sent = 0
    while sent < total_bytes:
        chunk = min(message_bytes, total_bytes - sent)
        yield SendNetwork(chunk, nic=nic)
        sent += chunk


def interactive_excess_latency_us(proc, params: InteractiveParams) -> float:
    """Mean queueing delay per burst, from a finished process."""
    if proc.finished < 0:
        raise ValueError(f"process {proc.pid} has not finished")
    return max(0.0, (proc.response_us - params.ideal_us) / params.bursts)
