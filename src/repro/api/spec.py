"""The unified simulation facade: spec in, booted machine out.

Every experiment used to repeat the same five steps by hand — build a
:class:`~repro.kernel.machine.MachineConfig`, construct the
:class:`~repro.kernel.kernel.Kernel`, create SPUs, ``boot()``, wire
swap mounts — before it could spawn a single job.  A
:class:`SimulationSpec` names that whole machine shape declaratively
(CPUs, memory, disks, NICs, scheme, SPUs, seed), and

* :func:`build` turns a spec into a ready :class:`Simulation` — booted
  kernel, SPUs created and swap-routed, workload loader applied —
  ready for ``spawn``/``run``;
* :func:`run` does ``build`` + ``Simulation.run`` in one call for
  specs that carry their workload in ``load``.

Determinism is part of the contract: a spec is a pure description, so
``run(spec)`` is a function of the spec alone (the kernel derives all
randomness from ``spec.seed``), which is what lets the parallel sweep
executor fan specs across processes and still merge byte-identical
results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.core.contracts import SharingContract
from repro.core.schemes import SchemeConfig
from repro.core.spu import SPU
from repro.disk.model import fast_disk
from repro.kernel.kernel import Kernel, Process
from repro.kernel.machine import DiskSpec, MachineConfig, NicSpec
from repro.kernel.syscalls import Behavior
from repro.metrics.stats import JobResult, job_results


@dataclass(frozen=True)
class SpuSpec:
    """One SPU in the machine: a name, and optionally a swap disk."""

    name: str
    #: Disk index this SPU's paging I/O goes to; None leaves the
    #: kernel's default routing in place.
    swap_mount: Optional[int] = None


@dataclass
class SimulationSpec:
    """A complete, picklable description of one simulation.

    ``disks`` is either an int — that many independent fast disks, the
    common case — or explicit :class:`DiskSpec` objects for experiments
    that model a particular drive.  ``spus`` entries are names (no swap
    routing) or :class:`SpuSpec` objects.  ``load`` optionally carries
    the workload: a callable invoked with the built :class:`Simulation`
    to create files and spawn processes (it must be a module-level
    function if the spec is to cross a process boundary).
    """

    ncpus: int
    memory_mb: int
    scheme: SchemeConfig
    spus: Sequence[Union[str, SpuSpec]]
    disks: Union[int, Sequence[DiskSpec]] = 1
    nics: Sequence[NicSpec] = ()
    seed: int = 0
    load: Optional[Callable[["Simulation"], None]] = None
    #: Sharing contract dividing the machine among its SPUs; None keeps
    #: the :class:`MachineConfig` default (equal shares).  The fleet
    #: layer passes weighted/scaled contracts here so evacuated SPUs
    #: land with their (possibly degraded) contractual weight.
    contract: Optional[SharingContract] = None

    def spu_specs(self) -> List[SpuSpec]:
        return [
            spu if isinstance(spu, SpuSpec) else SpuSpec(name=spu)
            for spu in self.spus
        ]

    def disk_specs(self) -> List[DiskSpec]:
        if isinstance(self.disks, int):
            return [DiskSpec(geometry=fast_disk()) for _ in range(self.disks)]
        return list(self.disks)

    def machine_config(self) -> MachineConfig:
        kwargs = {}
        if self.contract is not None:
            kwargs["contract"] = self.contract
        return MachineConfig(
            ncpus=self.ncpus,
            memory_mb=self.memory_mb,
            disks=self.disk_specs(),
            nics=list(self.nics),
            scheme=self.scheme,
            seed=self.seed,
            **kwargs,
        )


class Simulation:
    """A booted kernel plus its SPUs, behind one object.

    Thin by design: ``kernel`` stays public for anything the facade
    does not wrap (fault injectors, watchdogs, drive stats), so
    adopting the facade never walls an experiment off from the machine.
    """

    def __init__(self, spec: SimulationSpec, kernel: Kernel,
                 spus: Sequence[SPU]):
        self.spec = spec
        self.kernel = kernel
        self.spus = list(spus)
        self._by_name: Dict[str, SPU] = {s.name: s for s in self.spus}

    def spu(self, name: str) -> SPU:
        """Look an SPU up by the name its spec entry gave it."""
        return self._by_name[name]

    def spawn(self, behavior: Behavior, spu: Union[SPU, str, int],
              name: str = "") -> Process:
        """Spawn a job; ``spu`` may be the SPU, its name, or its index."""
        if isinstance(spu, str):
            spu = self._by_name[spu]
        elif isinstance(spu, int):
            spu = self.spus[spu]
        return self.kernel.spawn(behavior, spu, name=name)

    def run(self, until: Optional[int] = None) -> int:
        """Run the simulation; returns the number of events executed."""
        return self.kernel.run(until=until)

    def results(self) -> List[JobResult]:
        return job_results(self.kernel)

    # Conveniences for the handful of kernel attributes every
    # experiment touches.
    @property
    def engine(self):
        return self.kernel.engine

    @property
    def fs(self):
        return self.kernel.fs

    @property
    def drives(self):
        return self.kernel.drives


def build(spec: SimulationSpec) -> Simulation:
    """Spec -> booted machine: kernel, SPUs, swap mounts, workload."""
    kernel = Kernel(spec.machine_config())
    spu_specs = spec.spu_specs()
    spus = [kernel.create_spu(s.name) for s in spu_specs]
    kernel.boot()
    for spu, s in zip(spus, spu_specs):
        if s.swap_mount is not None:
            kernel.set_swap_mount(spu, s.swap_mount)
    sim = Simulation(spec, kernel, spus)
    if spec.load is not None:
        spec.load(sim)  # simlint: dynamic=callback-field
    return sim


def run(spec: SimulationSpec, until: Optional[int] = None) -> Simulation:
    """``build`` then run to quiescence (or ``until``); returns the sim."""
    sim = build(spec)
    sim.run(until=until)
    return sim
