"""The experiment registry: one name, one signature, one result schema.

The runner used to hard-code an import and a bespoke report function
per experiment (``run_figure_5`` here, ``run_table_3`` there).  Every
experiment now registers itself:

    @experiment("fig5", title="Figure 5 — CPU isolation", render=_render)
    def run_figure_5(seed: int = 0) -> Dict[str, CpuIsolationResult]:
        ...

The decorator registers the driver and returns it *unchanged*, so
direct calls (tests, notebooks) keep their precise return types, while
the registry offers the uniform entry point

    run(ExperimentSpec(name="fig5", seed=0)) -> ExperimentResult

used by the runner, the benchmarks, and the parallel sweep executor
(:class:`ExperimentSpec` is the picklable payload; :func:`run` the
module-level worker function).  :class:`ExperimentResult` carries the
driver's raw return plus one JSON-serialisable flat-record schema for
all experiments (via :func:`repro.metrics.export.to_records`), and
:meth:`ExperimentResult.canonical_json` is the byte-comparable form the
serial-vs-parallel divergence check hashes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.metrics.export import to_records

_REGISTRY: Dict[str, "Experiment"] = {}


@dataclass(frozen=True)
class Experiment:
    """One registered experiment driver."""

    name: str
    title: str
    fn: Callable[..., Any]
    #: Raw driver output -> human-readable report (the paper table).
    render: Optional[Callable[[Any], str]] = None
    #: Cheap enough for the --quick bench subset.
    quick: bool = False

    def report(self, data: Any) -> str:
        if self.render is None:
            return f"{self.title or self.name}: {data!r}"
        return self.render(data)


@dataclass(frozen=True)
class ExperimentSpec:
    """A picklable (experiment, seed) cell — the sweep payload."""

    name: str
    seed: int = 0


@dataclass
class ExperimentResult:
    """Uniform result envelope for every experiment.

    ``data`` is whatever the driver returned (its documented, typed
    form); ``records`` is the flat, JSON-ready projection shared by all
    experiments.
    """

    name: str
    seed: int
    data: Any
    records: List[Dict[str, Any]] = field(default_factory=list)

    def payload(self) -> Dict[str, Any]:
        return {"name": self.name, "seed": self.seed, "records": self.records}

    def canonical_json(self) -> str:
        """Deterministic serialisation for byte-identity comparison."""
        return json.dumps(self.payload(), sort_keys=True)


def experiment(
    name: str,
    title: str = "",
    render: Optional[Callable[[Any], str]] = None,
    quick: bool = False,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register a ``(seed=...) -> data`` driver under ``name``.

    Returns the driver unchanged — registration is purely additive.
    """

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        if name in _REGISTRY:
            raise ValueError(f"experiment {name!r} registered twice")
        _REGISTRY[name] = Experiment(
            name=name, title=title or name, fn=fn, render=render, quick=quick
        )
        return fn

    return decorate


def load_all() -> None:
    """Import every experiment module so decorators have run."""
    import repro.experiments  # noqa: F401  (import side effect)


def names(quick_only: bool = False) -> List[str]:
    """Registered experiment names, in registration order."""
    load_all()
    return [n for n, e in _REGISTRY.items() if e.quick or not quick_only]


def get(name: str) -> Experiment:
    load_all()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"no experiment {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def run(spec: ExperimentSpec) -> ExperimentResult:
    """The uniform entry point — and the sweep worker function."""
    exp = get(spec.name)
    data = exp.fn(seed=spec.seed)  # simlint: dynamic=experiment-registry
    return ExperimentResult(
        name=spec.name, seed=spec.seed, data=data, records=to_records(data)
    )
