"""Public facade: declarative simulation specs and the experiment
registry.  ``build``/``run`` replace the hand-rolled machine wiring;
``experiment``/``run_experiment`` give every paper figure one uniform,
picklable entry point."""

from repro.api.registry import (
    Experiment,
    ExperimentResult,
    ExperimentSpec,
    experiment,
    get,
    load_all,
    names,
)
from repro.api.registry import run as run_experiment
from repro.api.spec import Simulation, SimulationSpec, SpuSpec, build, run

# The fleet layer builds *on* this facade (its runner lowers machines
# onto SimulationSpec), so its re-exports must load lazily — an eager
# import here would be circular.
_FLEET_EXPORTS = {
    "FleetMachineSpec": "repro.fleet.spec",
    "FleetResult": "repro.fleet.runner",
    "FleetSpec": "repro.fleet.spec",
    "FleetSpuSpec": "repro.fleet.spec",
    "build_fleet": "repro.fleet.runner",
    "run_fleet": "repro.fleet.runner",
}


def __getattr__(name: str):
    module = _FLEET_EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)


__all__ = [
    "Experiment",
    "ExperimentResult",
    "ExperimentSpec",
    "FleetMachineSpec",
    "FleetResult",
    "FleetSpec",
    "FleetSpuSpec",
    "Simulation",
    "SimulationSpec",
    "SpuSpec",
    "build",
    "build_fleet",
    "experiment",
    "get",
    "load_all",
    "names",
    "run",
    "run_experiment",
    "run_fleet",
]
