"""Public facade: declarative simulation specs and the experiment
registry.  ``build``/``run`` replace the hand-rolled machine wiring;
``experiment``/``run_experiment`` give every paper figure one uniform,
picklable entry point."""

from repro.api.registry import (
    Experiment,
    ExperimentResult,
    ExperimentSpec,
    experiment,
    get,
    load_all,
    names,
)
from repro.api.registry import run as run_experiment
from repro.api.spec import Simulation, SimulationSpec, SpuSpec, build, run

__all__ = [
    "Experiment",
    "ExperimentResult",
    "ExperimentSpec",
    "Simulation",
    "SimulationSpec",
    "SpuSpec",
    "build",
    "experiment",
    "get",
    "load_all",
    "names",
    "run",
    "run_experiment",
]
