"""The stable public surface of the reproduction — ``repro.api`` v1.

Everything a user-facing script needs lives here: declarative machine
specs (``SimulationSpec``/``build``/``run``), the experiment registry
(``@experiment``/``run_experiment``), fleet and scenario specs, sweep
execution (``SweepPlan``), and the handful of workload, fault, metric,
and unit helpers the ``examples/`` scripts are written against.

Import from ``repro.api`` only — deep module paths (``repro.kernel``,
``repro.parallel.executor``, …) are internal and may move between
releases; this facade is the compatibility contract
(``tests/test_api_surface.py`` holds examples and README to it).
Symbols beyond the eagerly-imported spec/registry core resolve lazily
on first attribute access, both to keep ``import repro.api`` cheap and
because the fleet layer builds *on* this facade (its runner lowers
machines onto ``SimulationSpec``), so eager re-export would be
circular.
"""

from repro.api.registry import (
    Experiment,
    ExperimentResult,
    ExperimentSpec,
    experiment,
    get,
    load_all,
    names,
)
from repro.api.registry import run as run_experiment
from repro.api.spec import Simulation, SimulationSpec, SpuSpec, build, run

#: Lazily-resolved exports: public name -> (module, attribute).
_LAZY_EXPORTS = {
    # fleet (builds on this facade; must stay lazy)
    "FleetMachineSpec": ("repro.fleet.spec", "FleetMachineSpec"),
    "FleetResult": ("repro.fleet.runner", "FleetResult"),
    "FleetSpec": ("repro.fleet.spec", "FleetSpec"),
    "FleetSpuSpec": ("repro.fleet.spec", "FleetSpuSpec"),
    "build_fleet": ("repro.fleet.runner", "build_fleet"),
    "run_fleet": ("repro.fleet.runner", "run_fleet"),
    # scenario fuzzing
    "ScenarioSpec": ("repro.fuzz.scenario", "ScenarioSpec"),
    # parallel sweeps
    "Executor": ("repro.parallel", "Executor"),
    "RunOutcome": ("repro.parallel", "RunOutcome"),
    "SweepCache": ("repro.parallel", "SweepCache"),
    "SweepError": ("repro.parallel", "SweepError"),
    "SweepPlan": ("repro.parallel", "SweepPlan"),
    "SweepStats": ("repro.parallel", "SweepStats"),
    "WorkerPool": ("repro.parallel", "WorkerPool"),
    "run_sweep": ("repro.parallel", "run_sweep"),
    "sweep_values": ("repro.parallel", "values"),
    # machine construction and schemes
    "DiskSpec": ("repro", "DiskSpec"),
    "Kernel": ("repro", "Kernel"),
    "MachineConfig": ("repro", "MachineConfig"),
    "NicSpec": ("repro", "NicSpec"),
    "piso_scheme": ("repro", "piso_scheme"),
    "quota_scheme": ("repro", "quota_scheme"),
    "scheme_by_name": ("repro", "scheme_by_name"),
    "smp_scheme": ("repro", "smp_scheme"),
    "stride_scheme": ("repro", "stride_scheme"),
    # resource contracts and goals
    "AdaptiveContract": ("repro.core", "AdaptiveContract"),
    "DiskSchedPolicy": ("repro.core", "DiskSchedPolicy"),
    "EqualShareContract": ("repro.core", "EqualShareContract"),
    "GoalManager": ("repro.core", "GoalManager"),
    "VelocityGoal": ("repro.core", "VelocityGoal"),
    "WeightedContract": ("repro.core", "WeightedContract"),
    # process programs (syscall operations)
    "Acquire": ("repro", "Acquire"),
    "Barrier": ("repro", "Barrier"),
    "BarrierWait": ("repro", "BarrierWait"),
    "Checkpoint": ("repro", "Checkpoint"),
    "Compute": ("repro", "Compute"),
    "Gang": ("repro", "Gang"),
    "ReadFile": ("repro", "ReadFile"),
    "Release": ("repro", "Release"),
    "SendNetwork": ("repro", "SendNetwork"),
    "SetWorkingSet": ("repro", "SetWorkingSet"),
    "Sleep": ("repro", "Sleep"),
    "Spawn": ("repro", "Spawn"),
    "WaitChildren": ("repro", "WaitChildren"),
    "WriteFile": ("repro", "WriteFile"),
    "WriteMetadata": ("repro", "WriteMetadata"),
    # hardware faults
    "CpuAdd": ("repro", "CpuAdd"),
    "CpuRemove": ("repro", "CpuRemove"),
    "DiskFailure": ("repro", "DiskFailure"),
    "DiskTransient": ("repro", "DiskTransient"),
    "FaultInjector": ("repro", "FaultInjector"),
    "FaultPlan": ("repro", "FaultPlan"),
    "InvariantWatchdog": ("repro", "InvariantWatchdog"),
    "MemoryLoss": ("repro", "MemoryLoss"),
    # disk service-time models
    "fast_disk": ("repro.disk", "fast_disk"),
    "hp97560": ("repro.disk", "hp97560"),
    # metrics and reporting
    "UtilizationSampler": ("repro.metrics", "UtilizationSampler"),
    "format_report": ("repro.metrics", "format_report"),
    "format_table": ("repro.metrics", "format_table"),
    "machine_report": ("repro.metrics", "machine_report"),
    # simulation units
    "KB": ("repro.sim.units", "KB"),
    "MB": ("repro.sim.units", "MB"),
    "msecs": ("repro.sim.units", "msecs"),
    "secs": ("repro.sim.units", "secs"),
    "to_seconds": ("repro.sim.units", "to_seconds"),
    # canned workloads
    "CopyParams": ("repro.workloads", "CopyParams"),
    "PmakeParams": ("repro.workloads", "PmakeParams"),
    "copy_job": ("repro.workloads", "copy_job"),
    "create_copy_files": ("repro.workloads", "create_copy_files"),
    "create_pmake_files": ("repro.workloads", "create_pmake_files"),
    "pmake_job": ("repro.workloads", "pmake_job"),
    # the paper-reproduction CLI (figures/tables driver)
    "paper_main": ("repro.experiments.runner", "main"),
}


def __getattr__(name: str):
    entry = _LAZY_EXPORTS.get(name)
    if entry is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(entry[0]), entry[1])
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__():
    return sorted(set(__all__) | set(globals()))


__all__ = [
    "Experiment",
    "ExperimentResult",
    "ExperimentSpec",
    "Simulation",
    "SimulationSpec",
    "SpuSpec",
    "build",
    "experiment",
    "get",
    "load_all",
    "names",
    "run",
    "run_experiment",
    *sorted(_LAZY_EXPORTS),
]
