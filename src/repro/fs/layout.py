"""On-disk file layout.

A :class:`Volume` places files on a disk as one or more extents
(contiguous sector runs).  The two layouts the paper's workloads need:

* **contiguous** — "the sectors of a single file are often laid out
  contiguously on the disk"; the copy workloads read/write such files.
* **fragmented** — pmake touches many small files scattered across the
  disk, plus "many repeated writes of meta-data to a single sector".
  Fragmented files are split into extents placed at spread-out
  positions, and every file has a metadata sector.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim.units import PAGE_SIZE, SECTOR_SIZE, sectors


class LayoutError(RuntimeError):
    """Raised when a volume cannot satisfy an allocation."""


@dataclass(frozen=True)
class Extent:
    """A contiguous run of sectors."""

    start: int
    nsectors: int

    def __post_init__(self) -> None:
        if self.nsectors <= 0:
            raise ValueError(f"extent must cover >= 1 sector, got {self.nsectors}")
        if self.start < 0:
            raise ValueError(f"negative extent start {self.start}")

    @property
    def end(self) -> int:
        """One past the last sector."""
        return self.start + self.nsectors


_file_ids = itertools.count(1)


@dataclass
class File:
    """A file: a name, a size, extents, and a metadata sector."""

    name: str
    size_bytes: int
    extents: List[Extent]
    metadata_sector: int
    file_id: int = field(default_factory=lambda: next(_file_ids))

    @property
    def nsectors(self) -> int:
        return sectors(self.size_bytes)

    @property
    def nblocks(self) -> int:
        """Number of whole cache blocks (pages) covering the file."""
        return -(-self.size_bytes // PAGE_SIZE)

    def sector_runs(self, start_sector: int, count: int) -> List[Tuple[int, int]]:
        """Map a logical sector range to physical ``(sector, count)`` runs."""
        if start_sector < 0 or count <= 0 or start_sector + count > self.nsectors:
            raise ValueError(
                f"range [{start_sector}, +{count}) outside file of {self.nsectors} sectors"
            )
        runs: List[Tuple[int, int]] = []
        logical = 0
        remaining = count
        for extent in self.extents:
            if remaining == 0:
                break
            extent_end = logical + extent.nsectors
            if start_sector < extent_end and logical < start_sector + count:
                offset_in_extent = max(0, start_sector - logical)
                take = min(extent.nsectors - offset_in_extent, remaining)
                runs.append((extent.start + offset_in_extent, take))
                remaining -= take
            logical = extent_end
        if remaining:
            raise LayoutError(f"file {self.name!r} extents cover too few sectors")
        return runs

    def block_sector(self, block: int) -> int:
        """Physical start sector of logical cache block ``block``."""
        runs = self.sector_runs(block * (PAGE_SIZE // SECTOR_SIZE), 1)
        return runs[0][0]


class Volume:
    """Allocates file extents on one disk.

    Contiguous allocation proceeds from a bump pointer; fragmented
    allocation scatters fixed-size extents pseudo-randomly (from a
    caller-supplied RNG so runs are deterministic) across the volume.
    """

    __slots__ = ("total_sectors", "_rng", "_next_free", "files")

    def __init__(self, total_sectors: int, rng: Optional[random.Random] = None):
        if total_sectors <= 0:
            raise LayoutError("volume must have at least one sector")
        self.total_sectors = total_sectors
        self._rng = rng if rng is not None else random.Random(0)
        self._next_free = 0
        self.files: Dict[str, File] = {}

    def _take(self, nsectors: int) -> int:
        if self._next_free + nsectors > self.total_sectors:
            raise LayoutError(
                f"volume full: need {nsectors} sectors at {self._next_free}"
                f" of {self.total_sectors}"
            )
        start = self._next_free
        self._next_free += nsectors
        return start

    def allocate_contiguous(
        self, name: str, size_bytes: int, at_sector: Optional[int] = None
    ) -> File:
        """Lay the file out as one extent plus a metadata sector.

        ``at_sector`` pins the extent to a specific disk position (the
        bump pointer moves past it), letting experiments control how
        far apart two files sit — seek distance is part of what the
        disk experiments measure.
        """
        self._check_new(name, size_bytes)
        nsec = sectors(size_bytes)
        if at_sector is not None:
            if not 0 <= at_sector <= self.total_sectors - nsec - 1:
                raise LayoutError(
                    f"cannot place {nsec} sectors at {at_sector}"
                    f" on a {self.total_sectors}-sector volume"
                )
            self._next_free = max(self._next_free, at_sector)
        meta = self._take(1)
        start = self._take(nsec)
        file = File(name, size_bytes, [Extent(start, nsec)], metadata_sector=meta)
        self.files[name] = file
        return file

    def allocate_fragmented(
        self, name: str, size_bytes: int, extent_sectors: int = 16
    ) -> File:
        """Lay the file out as small extents scattered over the volume.

        Extents are placed at random positions drawn over the whole
        volume, modelling an aged filesystem; they may overlap other
        files' sectors, which is harmless since the simulator never
        interprets the bytes.
        """
        self._check_new(name, size_bytes)
        if extent_sectors <= 0:
            raise LayoutError("extent_sectors must be positive")
        meta = self._rng.randrange(self.total_sectors)
        nsec = sectors(size_bytes)
        extents: List[Extent] = []
        remaining = nsec
        while remaining > 0:
            take = min(extent_sectors, remaining)
            start = self._rng.randrange(max(1, self.total_sectors - take))
            extents.append(Extent(start, take))
            remaining -= take
        file = File(name, size_bytes, extents, metadata_sector=meta)
        self.files[name] = file
        return file

    def _check_new(self, name: str, size_bytes: int) -> None:
        if size_bytes <= 0:
            raise LayoutError(f"file size must be positive, got {size_bytes}")
        if name in self.files:
            raise LayoutError(f"file {name!r} already exists")

    def get(self, name: str) -> File:
        try:
            return self.files[name]
        except KeyError:
            raise LayoutError(f"no file named {name!r}") from None
