"""Sequential read-ahead detection.

The copy workloads depend on the kernel's read-ahead ("there are
multiple outstanding reads because of read-ahead by the kernel",
Section 4.5): once a stream looks sequential, the next window of blocks
is prefetched asynchronously, keeping several requests in the disk
queue at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

StreamKey = Tuple[int, int]  # (pid, file_id)


@dataclass
class _StreamState:
    expected_next: int
    sequential_runs: int = 0
    prefetched_through: int = -1


class ReadAheadTracker:
    """Per-(process, file) sequential access detection and window sizing."""

    __slots__ = ("window_blocks", "min_sequential_runs", "_streams")

    def __init__(self, window_blocks: int = 8, min_sequential_runs: int = 1):
        if window_blocks < 0:
            raise ValueError("window_blocks must be >= 0")
        self.window_blocks = window_blocks
        self.min_sequential_runs = min_sequential_runs
        self._streams: Dict[StreamKey, _StreamState] = {}

    def observe(
        self, key: StreamKey, first_block: int, nblocks: int, file_nblocks: int
    ) -> List[int]:
        """Record an access; return the block numbers to prefetch (maybe [])."""
        if nblocks <= 0:
            raise ValueError("access must cover at least one block")
        end = first_block + nblocks
        state = self._streams.get(key)
        if state is None or first_block not in (state.expected_next, state.expected_next - 1):
            # New or non-sequential stream: reset detection.
            self._streams[key] = _StreamState(expected_next=end)
            return []
        state.sequential_runs += 1
        state.expected_next = end
        if state.sequential_runs < self.min_sequential_runs or self.window_blocks == 0:
            return []
        # Refill in half-window batches: only top up once the reader has
        # consumed half the window, so prefetch requests stay large
        # instead of sliding one block at a time.
        remaining_ahead = state.prefetched_through + 1 - end
        if remaining_ahead > self.window_blocks // 2:
            return []
        start = max(end, state.prefetched_through + 1)
        stop = min(end + self.window_blocks, file_nblocks)
        if start >= stop:
            return []
        state.prefetched_through = stop - 1
        return list(range(start, stop))

    def forget(self, key: StreamKey) -> None:
        """Drop state for a closed stream."""
        self._streams.pop(key, None)
