"""Filesystem substrate: layout, buffer cache, read-ahead, writeback."""

from repro.fs.buffercache import (
    BlockKey,
    BufferCache,
    CacheBlock,
    PageProvider,
    UnlimitedPageProvider,
)
from repro.fs.filesystem import FileSystem, FileSystemError
from repro.fs.layout import Extent, File, LayoutError, Volume
from repro.fs.readahead import ReadAheadTracker
from repro.fs.writeback import WritebackDaemon

__all__ = [
    "BufferCache",
    "CacheBlock",
    "BlockKey",
    "PageProvider",
    "UnlimitedPageProvider",
    "FileSystem",
    "FileSystemError",
    "Volume",
    "File",
    "Extent",
    "LayoutError",
    "ReadAheadTracker",
    "WritebackDaemon",
]
