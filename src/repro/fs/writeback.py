"""Delayed-write flushing.

Dirty buffer-cache blocks are written back by a daemon, not by the
dirtying process.  A flush batch typically carries blocks from several
SPUs, so the requests are *scheduled* under the ``shared`` SPU at the
lowest disk priority, and the individual sectors are *charged* back to
the owning user SPUs on completion (Section 3.3).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.spu import SHARED_SPU_ID
from repro.disk.drive import DiskDrive
from repro.disk.request import DiskOp, DiskRequest
from repro.fs.buffercache import BufferCache, CacheBlock
from repro.fs.layout import File
from repro.sim.engine import Engine, PeriodicTimer
from repro.sim.units import SEC, SECTORS_PER_PAGE


#: Resolves a file_id to its File object and the drive holding it.
FileResolver = Callable[[int], Tuple[File, DiskDrive]]


class WritebackDaemon:
    """Flushes dirty blocks, clustering physically contiguous sectors."""

    __slots__ = (
        "engine",
        "cache",
        "resolve",
        "period",
        "max_cluster_sectors",
        "_timer",
        "flushes_issued",
    )

    def __init__(
        self,
        engine: Engine,
        cache: BufferCache,
        resolve: FileResolver,
        period: int = 1 * SEC,
        max_cluster_sectors: int = 128,
    ):
        if max_cluster_sectors < SECTORS_PER_PAGE:
            raise ValueError("cluster must hold at least one block")
        self.engine = engine
        self.cache = cache
        self.resolve = resolve
        self.period = period
        self.max_cluster_sectors = max_cluster_sectors
        self._timer: Optional[PeriodicTimer] = None
        #: Total flush requests issued, for reporting.
        self.flushes_issued = 0

    # --- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        if self._timer is not None:
            raise RuntimeError("writeback daemon already started")
        self._timer = self.engine.every(self.period, self.flush_all)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()
            self._timer = None

    # --- flushing --------------------------------------------------------------

    def flush_all(self, on_done: Optional[Callable[[], None]] = None) -> int:
        """Flush every dirty, unpinned block.  Returns requests issued."""
        return self._flush(self.cache.dirty_blocks(), on_done)

    def flush_spu(self, spu_id: int, on_done: Optional[Callable[[], None]] = None) -> int:
        """Flush one SPU's dirty blocks (memory-pressure path)."""
        return self._flush(self.cache.dirty_blocks(spu_id), on_done)

    def _flush(
        self, blocks: List[CacheBlock], on_done: Optional[Callable[[], None]]
    ) -> int:
        if not blocks:
            if on_done is not None:
                self.engine.call_after(0, on_done)  # simlint: dynamic=continuation
            return 0

        # Map blocks to physical position, group per drive, sort by
        # sector, and cut clusters at physical discontinuities.
        by_drive: Dict[int, List[Tuple[int, CacheBlock]]] = {}
        drives: Dict[int, DiskDrive] = {}
        for block in blocks:
            file, drive = self.resolve(block.file_id)
            sector = file.block_sector(block.block)
            by_drive.setdefault(drive.disk_id, []).append((sector, block))
            drives[drive.disk_id] = drive

        outstanding = 0
        requests: List[Tuple[DiskDrive, DiskRequest]] = []
        for drive_key, entries in by_drive.items():
            entries.sort(key=lambda e: (e[0], e[1].file_id, e[1].block))
            cluster: List[Tuple[int, CacheBlock]] = []
            for sector, block in entries:
                if cluster and (
                    sector != cluster[-1][0] + SECTORS_PER_PAGE
                    or (len(cluster) + 1) * SECTORS_PER_PAGE > self.max_cluster_sectors
                ):
                    requests.append((drives[drive_key], self._build(cluster)))
                    cluster = []
                cluster.append((sector, block))
            if cluster:
                requests.append((drives[drive_key], self._build(cluster)))

        done_state = {"remaining": len(requests)}

        def one_done(_req: DiskRequest) -> None:
            done_state["remaining"] -= 1
            if done_state["remaining"] == 0 and on_done is not None:
                on_done()  # simlint: dynamic=continuation

        for drive, request in requests:
            request.on_complete = self._completion(request, one_done)
            self.flushes_issued += 1
            outstanding += 1
            drive.submit(request)
        return outstanding

    def _build(self, cluster: List[Tuple[int, CacheBlock]]) -> DiskRequest:
        """One write request for a physically contiguous cluster."""
        charges: Dict[int, int] = {}
        for _sector, block in cluster:
            block.pinned = True
            charges[block.spu_charged] = (
                charges.get(block.spu_charged, 0) + SECTORS_PER_PAGE
            )
        request = DiskRequest(
            spu_id=SHARED_SPU_ID,
            op=DiskOp.WRITE,
            sector=cluster[0][0],
            nsectors=len(cluster) * SECTORS_PER_PAGE,
            charges=charges,
        )
        # Stash the blocks and their epochs so completion can tell
        # whether a block was re-dirtied mid-flight.
        request._flush_blocks = [(b, b.epoch) for _s, b in cluster]  # type: ignore[attr-defined]
        return request

    def _completion(
        self, request: DiskRequest, then: Callable[[DiskRequest], None]
    ) -> Callable[[DiskRequest], None]:
        def complete(req: DiskRequest) -> None:
            for block, epoch in request._flush_blocks:  # type: ignore[attr-defined]
                block.pinned = False
                if block.key in self.cache.blocks and block.epoch == epoch:
                    self.cache.mark_clean(block.key)
            then(req)  # simlint: dynamic=continuation

        return complete
