"""The filesystem facade the process model calls into.

Reads go through the buffer cache with sequential read-ahead; writes
are delayed (dirtied in the cache, flushed by the writeback daemon).
All completion is callback-based: the kernel blocks a process on a
syscall and passes a continuation that makes it runnable again.

Memory pressure shows up here exactly as in the paper's runs: when a
writer's SPU has no page headroom left, the writer blocks while its
dirty blocks are flushed ("the buffer cache fills up causing writes to
the disk", Section 4.5).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.disk.drive import DiskDrive
from repro.disk.request import DiskOp, DiskRequest
from repro.fs.buffercache import BlockKey, BufferCache
from repro.fs.layout import File, Volume
from repro.fs.readahead import ReadAheadTracker
from repro.fs.writeback import WritebackDaemon
from repro.sim.engine import Engine
from repro.sim.units import PAGE_SIZE, SEC, SECTORS_PER_PAGE

Callback = Callable[[], None]


class FileSystemError(RuntimeError):
    """Raised for out-of-range accesses and bad mounts."""


class FileSystem:
    """Buffer-cached filesystem over one or more disk drives."""

    __slots__ = (
        "engine",
        "cache",
        "read_cluster_sectors",
        "readahead",
        "_mounts",
        "_files",
        "_inflight",
        "writeback",
    )

    def __init__(
        self,
        engine: Engine,
        cache: BufferCache,
        readahead_blocks: int = 16,
        read_cluster_sectors: int = 128,
        writeback_period: int = 1 * SEC,
        writeback_cluster_sectors: int = 128,
    ):
        if read_cluster_sectors < SECTORS_PER_PAGE:
            raise FileSystemError("read cluster must hold at least one block")
        self.engine = engine
        self.cache = cache
        self.read_cluster_sectors = read_cluster_sectors
        self.readahead = ReadAheadTracker(readahead_blocks)
        self._mounts: List[Tuple[DiskDrive, Volume]] = []
        self._files: Dict[int, Tuple[File, DiskDrive]] = {}
        #: Blocks with a disk read in flight, and their waiters.
        self._inflight: Dict[BlockKey, List[Callback]] = {}
        self.writeback = WritebackDaemon(
            engine,
            cache,
            self._resolve,
            period=writeback_period,
            max_cluster_sectors=writeback_cluster_sectors,
        )

    # --- mounts and files ------------------------------------------------------

    def mount(self, drive: DiskDrive, volume: Volume) -> int:
        """Attach a drive+volume pair; returns the mount index."""
        self._mounts.append((drive, volume))
        return len(self._mounts) - 1

    def retarget_drive(self, dead: int, replacement: int) -> None:
        """Point a dead mount's volume and files at a surviving drive.

        Called by the kernel on permanent drive failure (the mirrored
        pair failover of :meth:`Kernel.fail_disk`): every file that
        lived on the dead drive is served by the replacement from now
        on.  Sector addresses are kept verbatim, so the replacement
        must be at least as large as the dead volume — a mirror is a
        same-geometry copy, not a resize.
        """
        try:
            dead_drive, volume = self._mounts[dead]
            new_drive, _ = self._mounts[replacement]
        except IndexError:
            raise FileSystemError(
                f"bad retarget {dead} -> {replacement}"
            ) from None
        if new_drive.geometry.total_sectors < volume.total_sectors:
            raise FileSystemError(
                f"mount {replacement} ({new_drive.geometry.total_sectors}"
                f" sectors) too small to mirror mount {dead}'s volume"
                f" of {volume.total_sectors} sectors"
            )
        self._mounts[dead] = (new_drive, volume)
        for file_id, (file, drive) in list(self._files.items()):
            if drive is dead_drive:
                self._files[file_id] = (file, new_drive)

    def start_daemons(self) -> None:
        """Start the periodic writeback daemon."""
        self.writeback.start()

    def create(
        self,
        mount: int,
        name: str,
        size_bytes: int,
        fragmented: bool = False,
        extent_sectors: int = 16,
        at_sector: Optional[int] = None,
    ) -> File:
        """Create and register a file on the given mount."""
        try:
            drive, volume = self._mounts[mount]
        except IndexError:
            raise FileSystemError(f"no mount {mount}") from None
        if fragmented:
            file = volume.allocate_fragmented(name, size_bytes, extent_sectors)
        else:
            file = volume.allocate_contiguous(name, size_bytes, at_sector=at_sector)
        self._files[file.file_id] = (file, drive)
        return file

    def _resolve(self, file_id: int) -> Tuple[File, DiskDrive]:
        try:
            return self._files[file_id]
        except KeyError:
            raise FileSystemError(f"unknown file id {file_id}") from None

    def drive_of(self, file: File) -> DiskDrive:
        return self._resolve(file.file_id)[1]

    # --- reads -----------------------------------------------------------------

    def read(
        self,
        pid: int,
        spu_id: int,
        file: File,
        offset: int,
        nbytes: int,
        on_done: Callback,
    ) -> None:
        """Read a byte range; ``on_done`` fires when all blocks are in."""
        self._check_range(file, offset, nbytes)
        drive = self.drive_of(file)
        first_block = offset // PAGE_SIZE
        last_block = (offset + nbytes - 1) // PAGE_SIZE
        state = {"remaining": 0, "issued": False}

        def arrived() -> None:
            state["remaining"] -= 1
            if state["remaining"] == 0 and state["issued"]:
                on_done()

        missing: List[int] = []
        for block in range(first_block, last_block + 1):
            key = (file.file_id, block)
            if self.cache.lookup(key, spu_id) is not None:
                continue
            if key in self._inflight:
                state["remaining"] += 1
                self._inflight[key].append(arrived)
            else:
                missing.append(block)

        for cluster in self._cluster(file, missing, self.read_cluster_sectors):
            state["remaining"] += len(cluster)
            self._issue_read(drive, file, cluster, spu_id, pid, waiter=arrived)

        # Read-ahead: prefetch asynchronously, waking nobody.
        prefetch = self.readahead.observe(
            (pid, file.file_id), first_block, last_block - first_block + 1, file.nblocks
        )
        prefetch = [
            b
            for b in prefetch
            if (file.file_id, b) not in self._inflight
            and not self.cache.contains((file.file_id, b))
        ]
        for cluster in self._cluster(file, prefetch, self.read_cluster_sectors):
            self._issue_read(drive, file, cluster, spu_id, pid, waiter=None)

        state["issued"] = True
        if state["remaining"] == 0:
            self.engine.call_after(0, on_done)  # simlint: dynamic=continuation

    def _cluster(
        self, file: File, blocks: List[int], max_sectors: int
    ) -> List[List[int]]:
        """Split block numbers into physically contiguous clusters."""
        clusters: List[List[int]] = []
        current: List[int] = []
        last_sector = None
        for block in blocks:
            sector = file.block_sector(block)
            contiguous = last_sector is not None and sector == last_sector + SECTORS_PER_PAGE
            fits = (len(current) + 1) * SECTORS_PER_PAGE <= max_sectors
            if current and contiguous and fits:
                current.append(block)
            else:
                if current:
                    clusters.append(current)
                current = [block]
            last_sector = sector
        if current:
            clusters.append(current)
        return clusters

    def _issue_read(
        self,
        drive: DiskDrive,
        file: File,
        cluster: List[int],
        spu_id: int,
        pid: int,
        waiter: Optional[Callback],
    ) -> None:
        for block in cluster:
            self._inflight[(file.file_id, block)] = [waiter] if waiter else []

        def complete(req: DiskRequest) -> None:
            for block in cluster:
                key = (file.file_id, block)
                if not req.failed and not self.cache.contains(key):
                    # Insertion failure means the data is streamed
                    # through uncached; the read still completes.  A
                    # failed read caches nothing — waiters proceed with
                    # whatever error handling the caller models.
                    self.cache.insert(key, spu_id, dirty=False, now=self.engine.now)
                for wake in self._inflight.pop(key, []):
                    wake()  # simlint: dynamic=continuation

        drive.submit(
            DiskRequest(
                spu_id=spu_id,
                op=DiskOp.READ,
                sector=file.block_sector(cluster[0]),
                nsectors=len(cluster) * SECTORS_PER_PAGE,
                on_complete=complete,
                pid=pid,
            )
        )

    # --- writes --------------------------------------------------------------

    def write(
        self,
        pid: int,
        spu_id: int,
        file: File,
        offset: int,
        nbytes: int,
        on_done: Callback,
    ) -> None:
        """Delayed write: dirty the covered blocks, block on memory pressure."""
        self._check_range(file, offset, nbytes)
        first_block = offset // PAGE_SIZE
        last_block = (offset + nbytes - 1) // PAGE_SIZE
        blocks = list(range(first_block, last_block + 1))

        def step(i: int) -> None:
            while i < len(blocks):
                key = (file.file_id, blocks[i])
                if self.cache.lookup(key, spu_id) is not None:
                    self.cache.mark_dirty(key, self.engine.now)
                    i += 1
                    continue
                if key in self._inflight:
                    # A read (likely prefetch) is bringing the block in;
                    # wait for it, then overwrite.  These continuation
                    # lambdas capture the per-iteration index, so they
                    # cannot be hoisted out of the loop; each one is
                    # allocated at most once per blocked block.
                    index = i
                    self._inflight[key].append(lambda: step(index))  # simlint: disable=SL402
                    return
                if self.cache.insert(key, spu_id, dirty=True, now=self.engine.now):
                    i += 1
                    continue
                # Memory pressure: flush and retry, then fall back to
                # writing through uncached.
                index = i
                if self.cache.dirty_blocks(spu_id):
                    self.writeback.flush_spu(spu_id, on_done=lambda: step(index))  # simlint: disable=SL402
                    return
                if self.cache.dirty_blocks():
                    self.writeback.flush_all(on_done=lambda: step(index))  # simlint: disable=SL402
                    return
                self._write_through(file, blocks[i], spu_id, pid, lambda: step(index + 1))  # simlint: disable=SL402
                return
            self.engine.call_after(0, on_done)  # simlint: dynamic=continuation

        step(0)

    def _write_through(
        self, file: File, block: int, spu_id: int, pid: int, then: Callback
    ) -> None:
        self.drive_of(file).submit(
            DiskRequest(
                spu_id=spu_id,
                op=DiskOp.WRITE,
                sector=file.block_sector(block),
                nsectors=SECTORS_PER_PAGE,
                on_complete=lambda _req: then(),
                pid=pid,
            )
        )

    def write_metadata(self, pid: int, spu_id: int, file: File, on_done: Callback) -> None:
        """Synchronous one-sector metadata update (pmake's hot sector)."""
        self.drive_of(file).submit(
            DiskRequest(
                spu_id=spu_id,
                op=DiskOp.WRITE,
                sector=file.metadata_sector,
                nsectors=1,
                on_complete=lambda _req: on_done(),
                pid=pid,
            )
        )

    # --- helpers -----------------------------------------------------------

    @staticmethod
    def _check_range(file: File, offset: int, nbytes: int) -> None:
        if nbytes <= 0:
            raise FileSystemError(f"access must cover >= 1 byte, got {nbytes}")
        if offset < 0 or offset + nbytes > file.size_bytes:
            raise FileSystemError(
                f"range [{offset}, +{nbytes}) outside {file.name!r}"
                f" of {file.size_bytes} bytes"
            )
