"""The file buffer cache.

Cached blocks occupy physical pages, so every insertion goes through a
:class:`PageProvider` — in the full kernel that is the memory manager,
which enforces per-SPU page caps ("SPU memory usage also includes pages
used indirectly in the kernel on behalf of an SPU, such as the file
buffer cache", Section 3.2).  A block touched by a second SPU is
recharged to the ``shared`` SPU (Section 2.2 / 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Tuple

from repro.core.spu import SHARED_SPU_ID


class PageProvider(Protocol):
    """Where the cache gets its pages; implemented by the memory manager."""

    def try_allocate(self, spu_id: int) -> bool:
        """Try to charge one page to ``spu_id``; False if over cap/full."""
        ...

    def free(self, spu_id: int) -> None:
        """Return one page charged to ``spu_id``."""
        ...

    def transfer(self, from_spu: int, to_spu: int) -> bool:
        """Move one page's charge between SPUs (shared-page detection)."""
        ...


class UnlimitedPageProvider:
    """A provider with a fixed global capacity and no per-SPU caps.

    Lets the filesystem run standalone (disk-only experiments, unit
    tests) without the memory subsystem.
    """

    __slots__ = ("capacity_pages", "used", "by_spu")

    def __init__(self, capacity_pages: int):
        if capacity_pages <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_pages = capacity_pages
        self.used = 0
        self.by_spu: Dict[int, int] = {}

    def try_allocate(self, spu_id: int) -> bool:
        if self.used >= self.capacity_pages:
            return False
        # Tie-break audit: +1/-1 on a counter commutes across
        # same-timestamp handlers, and the sanitizer's page-conservation
        # law re-checks the total after every event.
        self.used += 1  # simlint: disable=SL601
        self.by_spu[spu_id] = self.by_spu.get(spu_id, 0) + 1
        return True

    def free(self, spu_id: int) -> None:
        if self.by_spu.get(spu_id, 0) <= 0:
            raise ValueError(f"SPU {spu_id} holds no pages")
        # Tie-break audit: see try_allocate.
        self.used -= 1  # simlint: disable=SL601
        self.by_spu[spu_id] -= 1

    def transfer(self, from_spu: int, to_spu: int) -> bool:
        if self.by_spu.get(from_spu, 0) <= 0:
            return False
        self.by_spu[from_spu] -= 1
        self.by_spu[to_spu] = self.by_spu.get(to_spu, 0) + 1
        return True


BlockKey = Tuple[int, int]  # (file_id, logical block number)


@dataclass
class CacheBlock:
    """One page-sized cached file block."""

    file_id: int
    block: int
    spu_charged: int
    dirty: bool = False
    #: Monotonic access stamp for LRU.
    last_access: int = 0
    #: Dirtying time, for writeback ordering.
    dirty_since: int = -1
    #: Pinned while an I/O is in flight on the block.
    pinned: bool = False
    #: Bumped on every write so an in-flight flush can tell whether the
    #: block was re-dirtied while its write was on the wire.
    epoch: int = 0

    @property
    def key(self) -> BlockKey:
        return (self.file_id, self.block)


# One BufferCache per kernel; the per-block hot state is CacheBlock
# (a compact dataclass), not the cache object itself.
class BufferCache:  # simlint: disable=SL401
    """Page-granularity file cache with per-SPU charging and LRU eviction."""

    def __init__(self, provider: PageProvider):
        self.provider = provider
        self.blocks: Dict[BlockKey, CacheBlock] = {}
        self._clock = 0
        #: Counters for hit-ratio reporting.
        self.hits = 0
        self.misses = 0

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    # --- lookup -----------------------------------------------------------

    def lookup(self, key: BlockKey, spu_id: int) -> Optional[CacheBlock]:
        """Find a block; updates LRU stamp and shared-page charging.

        On access by an SPU other than the one charged, the block is
        recharged to the ``shared`` SPU (first touch marks the page with
        the accessor's SPU; a second SPU's touch makes it shared).
        """
        block = self.blocks.get(key)
        if block is None:
            self.misses += 1
            return None
        self.hits += 1
        block.last_access = self._tick()
        if block.spu_charged not in (spu_id, SHARED_SPU_ID):
            if self.provider.transfer(block.spu_charged, SHARED_SPU_ID):
                block.spu_charged = SHARED_SPU_ID
        return block

    def contains(self, key: BlockKey) -> bool:
        return key in self.blocks

    # --- insertion & eviction ---------------------------------------------------

    def insert(self, key: BlockKey, spu_id: int, dirty: bool, now: int) -> Optional[CacheBlock]:
        """Insert a block charged to ``spu_id``.

        Tries, in order: plain allocation; evicting a clean block of the
        same SPU; evicting any clean block.  Returns ``None`` when no
        page could be obtained (all of the SPU's cache is dirty and the
        machine is out of pages) — the caller then streams the data or
        blocks on writeback.
        """
        if key in self.blocks:
            raise ValueError(f"block {key} already cached")
        if not self.provider.try_allocate(spu_id):
            if not (self._evict_clean(spu_id) and self.provider.try_allocate(spu_id)):
                if not (self._evict_clean(None) and self.provider.try_allocate(spu_id)):
                    return None
        block = CacheBlock(
            file_id=key[0],
            block=key[1],
            spu_charged=spu_id,
            dirty=dirty,
            last_access=self._tick(),
            dirty_since=now if dirty else -1,
        )
        self.blocks[key] = block
        return block

    def evict_clean(self, spu_id: Optional[int] = None) -> bool:
        """Evict one clean block (optionally one SPU's); public entry
        point for the kernel's page-stealing path."""
        return self._evict_clean(spu_id)

    def _evict_clean(self, spu_id: Optional[int]) -> bool:
        """Evict the LRU clean, unpinned block (optionally one SPU's)."""
        candidates = [
            b
            for b in self.blocks.values()
            if not b.dirty and not b.pinned
            and (spu_id is None or b.spu_charged == spu_id)
        ]
        if not candidates:
            return False
        victim = min(candidates, key=lambda b: (b.last_access, b.file_id, b.block))
        self.remove(victim.key)
        return True

    def remove(self, key: BlockKey) -> None:
        """Drop a block and return its page to the provider."""
        block = self.blocks.pop(key)
        self.provider.free(block.spu_charged)

    # --- dirty management ------------------------------------------------------

    def mark_dirty(self, key: BlockKey, now: int) -> None:
        block = self.blocks[key]
        block.epoch += 1
        if not block.dirty:
            block.dirty = True
            block.dirty_since = now

    def mark_clean(self, key: BlockKey) -> None:
        block = self.blocks[key]
        block.dirty = False
        block.dirty_since = -1

    def dirty_blocks(self, spu_id: Optional[int] = None) -> List[CacheBlock]:
        """Dirty, unpinned blocks (optionally only one SPU's), oldest first."""
        out = [
            b
            for b in self.blocks.values()
            if b.dirty and not b.pinned
            and (spu_id is None or b.spu_charged == spu_id)
        ]
        out.sort(key=lambda b: (b.dirty_since, b.file_id, b.block))
        return out

    def dirty_count(self) -> int:
        return sum(1 for b in self.blocks.values() if b.dirty)

    def size(self) -> int:
        return len(self.blocks)

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
