"""Setup shim.

Kept alongside pyproject.toml so ``pip install -e . --no-use-pep517``
works in offline environments that lack the ``wheel`` package (PEP 517
editable installs need it; the legacy ``setup.py develop`` path does
not).
"""

from setuptools import setup

setup()
