"""Robustness extension — isolation while the hardware degrades.

Mid-run, the shared machine loses a disk (after a transient-error
window) and two processors.  The contract renegotiates over the
surviving capacity, and the bench compares each scheme's surviving SPU
against the response time its renegotiated contract promises (the
survivor alone on half the surviving CPUs and the one surviving disk).

The acceptance bar: PIso keeps the survivor within 15% of its
renegotiated-contract response time, SMP degrades it measurably more,
and the invariant watchdog sees zero conservation-law violations while
the machine comes apart.
"""

from repro.experiments import run_fault_isolation
from repro.metrics import format_table


def test_fault_isolation(run_once):
    results = run_once(run_fault_isolation)
    rows = [
        [name, f"{r.survivor_faulted_s:.2f}", f"{r.survivor_contract_s:.2f}",
         f"{r.degradation_ratio:.2f}", f"{r.victim_faulted_s:.2f}",
         r.transient_errors, r.renegotiations, r.violations]
        for name, r in results.items()
    ]
    print()
    print(format_table(
        ["scheme", "faulted s", "contract s", "ratio", "victim s",
         "io errs", "reneg", "violations"],
        rows,
        title="Fault isolation — survivor vs renegotiated contract",
    ))

    smp, piso = results["SMP"], results["PIso"]

    # The faults actually happened, and the contract renegotiated for
    # each of them (two CPU removals; the disk is not a contracted
    # resource, so its death reroutes rather than renegotiates).
    for r in results.values():
        assert r.transient_errors > 0
        assert r.renegotiations >= 2

    # PIso: the survivor holds its renegotiated share through the
    # transient window, both hot-removals, and the failover burst.
    assert piso.degradation_ratio <= 1.15

    # SMP: the victim's failover traffic and global scheduling land on
    # the survivor — measurably worse than PIso, and far off contract.
    assert smp.degradation_ratio > piso.degradation_ratio + 0.5
    assert smp.degradation_ratio > 2.0

    # The watchdog saw every conservation law hold while the machine
    # degraded underneath the workload.
    for r in results.values():
        assert r.watchdog_checks > 0
        assert r.violations == 0
