"""Zoned-disk ablation: does Table 4's shape survive a ZBR disk?

The paper's HP 97560 model is flat (constant sectors/track).  Disks of
the following generation were zoned; this bench re-runs the
big-and-small-copy comparison on :func:`hp97560_zoned` to check the
isolation result is a property of the *scheduling policies*, not of
the flat geometry.
"""

from repro.core import DiskSchedPolicy, piso_scheme
from repro.disk import hp97560_zoned
from repro.kernel import DiskSpec, Kernel, MachineConfig
from repro.metrics import format_table
from repro.sim.units import msecs
from repro.workloads import copy_job, create_copy_files
from repro.experiments.disk_bandwidth import TABLE4_BIG, TABLE4_SMALL


def run_on_zoned(policy: DiskSchedPolicy, seed: int = 0):
    scheme = piso_scheme().with_disk_policy(policy)
    kernel = Kernel(
        MachineConfig(
            ncpus=2, memory_mb=44,
            disks=[DiskSpec(geometry=hp97560_zoned(seek_scale=0.5, media_scale=4))],
            scheme=scheme, seed=seed,
        )
    )
    spu_small = kernel.create_spu("small")
    spu_big = kernel.create_spu("big")
    kernel.boot()
    total = kernel.drives[0].geometry.total_sectors
    small_src, small_dst = create_copy_files(
        kernel.fs, 0, TABLE4_SMALL, name="z-small", at_sector=total // 8
    )
    big_src, big_dst = create_copy_files(
        kernel.fs, 0, TABLE4_BIG, name="z-big", at_sector=(total * 5) // 8
    )
    big = kernel.spawn(copy_job(big_src, big_dst, TABLE4_BIG), spu_big)
    holder = {}
    kernel.engine.after(
        msecs(40),
        lambda: holder.__setitem__(
            "small",
            kernel.spawn(copy_job(small_src, small_dst, TABLE4_SMALL), spu_small),
        ),
    )
    kernel.run()
    small = holder["small"]
    stats = kernel.drives[0].stats
    return {
        "small_s": small.response_us / 1e6,
        "big_s": big.response_us / 1e6,
        "wait_small_ms": stats.mean_wait_ms(spu_small.spu_id),
        "latency_ms": stats.mean_latency_ms(),
    }


def test_table4_shape_on_zoned_disk(run_once):
    def sweep():
        return {
            p.value: run_on_zoned(p)
            for p in (DiskSchedPolicy.POS, DiskSchedPolicy.ISO, DiskSchedPolicy.PISO)
        }

    rows_by_policy = run_once(sweep)
    rows = [
        [name, f"{r['small_s']:.2f}", f"{r['big_s']:.2f}",
         f"{r['wait_small_ms']:.1f}", f"{r['latency_ms']:.2f}"]
        for name, r in rows_by_policy.items()
    ]
    print()
    print(format_table(
        ["policy", "small s", "big s", "wait S ms", "lat ms"], rows,
        title="Table 4 workload on a zoned (ZBR) disk",
    ))

    pos, iso, piso = (rows_by_policy[k] for k in ("pos", "iso", "piso"))
    # The whole Table-4 pattern must survive the geometry change.
    assert pos["wait_small_ms"] > 1.5 * iso["wait_small_ms"]
    assert iso["small_s"] < 0.75 * pos["small_s"]
    assert piso["small_s"] <= 1.05 * iso["small_s"]
    assert piso["latency_ms"] <= iso["latency_ms"]
