"""Table 4 — the big-and-small-copy disk workload.

Regenerates the full table for the Pos, Iso, and PIso policies.
Paper (response s / wait ms / latency ms):
  Pos  0.93 / 0.81   155.8 / 12.1   6.4
  Iso  0.56 / 1.22    68.9 / 23.7   8.2
  PIso 0.28 / 0.96    31.9 / 16.6   6.6
"""

from repro.experiments import PAPER_TABLE4, run_table_4
from repro.metrics import format_table


def test_table4_big_small_copy(run_once):
    rows_by_policy = run_once(run_table_4)
    rows = [
        [
            name,
            f"{r.response_a_s:.2f}",
            f"{r.response_b_s:.2f}",
            f"{PAPER_TABLE4[name].response_a_s:.2f}/{PAPER_TABLE4[name].response_b_s:.2f}",
            f"{r.wait_a_ms:.1f}",
            f"{r.wait_b_ms:.1f}",
            f"{r.latency_ms:.2f}",
            f"{PAPER_TABLE4[name].latency_ms:.1f}",
        ]
        for name, r in rows_by_policy.items()
    ]
    print()
    print(format_table(
        ["policy", "small s", "big s", "paper", "wait S ms", "wait B ms",
         "lat ms", "paper lat"],
        rows,
        title="Table 4 — big-and-small copy",
    ))

    pos, iso, piso = (rows_by_policy[k] for k in ("pos", "iso", "piso"))
    # Pos: the big copy locks the small one out.
    assert pos.response_a_s >= pos.response_b_s
    assert pos.wait_a_ms > 4 * pos.wait_b_ms
    # Iso: fairness for the small copy, but extra seek latency.
    assert iso.response_a_s < 0.75 * pos.response_a_s
    assert iso.latency_ms > 1.1 * pos.latency_ms
    # PIso: best of both — beats Iso on both jobs at Pos-level latency.
    assert piso.response_a_s <= iso.response_a_s
    assert piso.response_b_s <= iso.response_b_s
    assert piso.latency_ms < 1.15 * pos.latency_ms
