"""Figure 5 — CPU isolation workload.

Regenerates the per-application normalised response times for
Ocean / Flashlite / VCS under SMP, Quo, and PIso.
Paper: isolation helps Ocean (Quo the ideal, PIso close); only Quo
hurts Flashlite/VCS, PIso shares like SMP.
"""

from repro.experiments import run_figure_5
from repro.metrics import format_table


def test_fig5_cpu_isolation(run_once):
    results = run_once(run_figure_5)
    rows = [
        [name, f"{r.ocean:.0f}", f"{r.flashlite:.0f}", f"{r.vcs:.0f}"]
        for name, r in results.items()
    ]
    print()
    print(format_table(
        ["scheme", "ocean", "flashlite", "vcs"], rows,
        title="Figure 5 — response times (percent of SMP)",
    ))

    assert results["PIso"].ocean < 95          # isolation helps Ocean
    assert results["Quo"].ocean <= results["PIso"].ocean + 5
    assert results["Quo"].flashlite > 115      # quotas strand idle CPUs
    assert results["PIso"].flashlite < 112     # PIso shares like SMP
