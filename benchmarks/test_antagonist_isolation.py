"""Robustness extension — isolation against adversarial neighbours.

A latency-sensitive victim SPU shares the machine with one antagonist
from the library (fork bomb, memory bomb, disk flooder, buffer-cache
polluter, kernel-lock hogger, metadata storm).  Each cell compares the
victim's response next to the antagonist against its contract share
(the victim alone on half the machine).

The acceptance bar: PIso keeps the victim within 1.25x of contract
under *every* antagonist, while SMP degrades the victim at least 2x
under the three bluntest attacks (fork bomb, memory bomb, disk
flooder) — and the invariant watchdog sees zero violations anywhere.
"""

from repro.experiments import run_antagonist_isolation
from repro.metrics import format_table


def test_antagonist_isolation(run_once):
    result = run_once(run_antagonist_isolation)
    rows = [
        [row.antagonist, row.scheme, f"{row.victim_shared_s:.2f}",
         f"{row.victim_solo_s:.2f}", f"{row.slowdown:.2f}",
         row.overload.throttles,
         row.overload.oom_kills + row.overload.guard_kills,
         row.violations]
        for row in result.records()
    ]
    print()
    print(format_table(
        ["antagonist", "scheme", "shared s", "solo s", "slowdown",
         "throttles", "kills", "violations"],
        rows,
        title="Antagonist isolation — victim slowdown vs contract share",
    ))

    # PIso: every antagonist is contained — the victim stays within
    # 25% of the response its contract share promises.
    for kind, schemes in result.rows.items():
        assert schemes["PIso"].slowdown <= 1.25, (
            f"PIso victim lost isolation under {kind}:"
            f" {schemes['PIso'].slowdown:.2f}x"
        )

    # SMP: the blunt resource hogs tear the victim apart.
    for kind in ("fork_bomb", "memory_bomb", "disk_flooder"):
        assert result.rows[kind]["SMP"].slowdown >= 2.0, (
            f"SMP victim unexpectedly survived {kind}:"
            f" {result.rows[kind]['SMP'].slowdown:.2f}x"
        )

    # The hardened kernel fought back where the pressure warranted it
    # (the SMP disk flood is the clearest case), and the watchdog saw
    # every conservation law hold under every attack.
    smp_flood = result.rows["disk_flooder"]["SMP"].overload
    assert smp_flood.throttles + smp_flood.oom_kills + smp_flood.guard_kills > 0
    for row in result.records():
        assert row.watchdog_checks > 0
        assert row.violations == 0
