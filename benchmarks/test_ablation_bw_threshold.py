"""Section 3.3/4.5 ablation — the BW difference threshold.

"Smaller values imply better isolation, with a choice of zero resulting
in round-robin scheduling.  Larger values imply smaller seek times, and
a very large value results in the normal disk-head-position
scheduling."  The sweep regenerates that trade-off on the
big-and-small-copy workload, plus the decay-period and memory-reserve
sweeps.
"""

from repro.experiments import (
    run_bw_threshold_sweep,
    run_decay_sweep,
    run_reserve_sweep,
)
from repro.metrics import format_table


def test_ablation_bw_threshold(run_once):
    points = run_once(run_bw_threshold_sweep)
    rows = [
        [f"{p.threshold:g}", f"{p.small_response_s:.2f}",
         f"{p.big_response_s:.2f}", f"{p.small_wait_ms:.1f}",
         f"{p.latency_ms:.2f}"]
        for p in points
    ]
    print()
    print(format_table(
        ["threshold", "small s", "big s", "wait S ms", "lat ms"], rows,
        title="BW-difference threshold sweep",
    ))

    # Isolation end: small copy protected at low thresholds.
    assert points[0].small_response_s < 0.6 * points[-1].small_response_s
    # Throughput end: converges to position-only (lowest latency).
    assert points[-1].latency_ms <= min(p.latency_ms for p in points) * 1.05


def test_ablation_decay_period(run_once):
    points = run_once(run_decay_sweep)
    rows = [
        [f"{p.threshold:g}", f"{p.small_response_s:.2f}", f"{p.big_response_s:.2f}"]
        for p in points
    ]
    print()
    print(format_table(["decay ms", "small s", "big s"], rows,
                       title="Bandwidth-counter decay period sweep"))
    # Fairness holds across the sweep; the small copy is never locked out.
    assert all(p.small_response_s < p.big_response_s for p in points)


def test_ablation_reserve_threshold(run_once):
    points = run_once(run_reserve_sweep)
    rows = [
        [f"{p.reserve_fraction:.2f}", f"{p.spu1_unbalanced_s:.2f}",
         f"{p.spu2_unbalanced_s:.2f}"]
        for p in points
    ]
    print()
    print(format_table(["reserve", "SPU1 s", "SPU2 s"], rows,
                       title="Memory Reserve Threshold sweep"))
    # A huge reserve throttles lending: the borrower does no better
    # than at the paper's 8% setting.
    paper_setting, huge = points[1], points[-1]
    assert huge.spu2_unbalanced_s >= paper_setting.spu2_unbalanced_s
