"""Benchmark harness configuration.

Every bench regenerates one of the paper's tables or figures.  Each
simulation is deterministic and heavy relative to a microbenchmark, so
benches run a single round via ``run_once`` and print the same rows the
paper reports (run pytest with ``-s`` to see them).
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run the experiment exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
