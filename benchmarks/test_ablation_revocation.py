"""Section 3.1 ablations — revocation latency, migration cost, loan
hold-down.

The paper implements tick-granularity revocation (max 10 ms) and notes
that an IPI "might be needed to provide response time performance
isolation guarantees to interactive processes", that reallocating CPUs
has "hidden costs ... such as cache pollution", and that a smarter
policy could "prevent frequent reallocation of CPUs".  These benches
quantify all three.
"""

from repro.experiments import (
    run_holddown_ablation,
    run_migration_sweep,
    run_revocation_ablation,
)
from repro.metrics import format_table


def test_ablation_revocation_latency(run_once):
    result = run_once(run_revocation_ablation)
    print()
    print(
        f"interactive wake-up latency: tick {result.tick_latency_ms:.2f} ms"
        f" vs IPI {result.ipi_latency_ms:.2f} ms ({result.speedup:.0f}x)"
    )
    assert result.ipi_latency_ms < 1.0
    assert result.tick_latency_ms > 2.0


def test_ablation_migration_cost(run_once):
    points = run_once(run_migration_sweep)
    rows = [
        [p.migration_cost_us, p.scheme, f"{p.mean_response_s:.3f}"]
        for p in points
    ]
    print()
    print(format_table(
        ["cost us", "scheme", "mean response s"], rows,
        title="Cache-affinity cost: SMP's global queue pays, PIso's"
        " partition does not",
    ))
    smp = {p.migration_cost_us: p.mean_response_s for p in points if p.scheme == "SMP"}
    piso = {p.migration_cost_us: p.mean_response_s for p in points if p.scheme == "PIso"}
    top = max(smp)
    assert smp[top] / smp[0] > piso[top] / piso[0]


def test_ablation_loan_holddown(run_once):
    result = run_once(run_holddown_ablation)
    print()
    print(
        f"loan churn: {result.loans_without} grants without hold-down,"
        f" {result.loans_with} with 50 ms hold-down"
    )
    assert result.loans_with < result.loans_without
