"""Figure 2 — Pmake8 isolation.

Regenerates the response-time bars for the lightly-loaded SPUs (1-4)
in the balanced and unbalanced placements, normalised to SMP-balanced.
Paper: SMP 100 -> 156; Quo and PIso stay flat.
"""

from repro.experiments import PAPER_FIG2, run_figures_2_and_3
from repro.metrics import format_table


def test_fig2_pmake8_isolation(run_once):
    results = run_once(run_figures_2_and_3)
    rows = [
        [name, f"{r.fig2_balanced:.0f}", f"{r.fig2_unbalanced:.0f}",
         f"{PAPER_FIG2[name][0]:.0f}/{PAPER_FIG2[name][1]:.0f}"]
        for name, r in results.items()
    ]
    print()
    print(format_table(
        ["scheme", "balanced", "unbalanced", "paper B/U"], rows,
        title="Figure 2 — isolation for SPUs 1-4 (percent of SMP-balanced)",
    ))

    # Shape assertions (the paper's qualitative result).
    assert results["SMP"].fig2_unbalanced > 125
    assert abs(results["Quo"].fig2_unbalanced - 100) < 12
    assert results["PIso"].fig2_unbalanced < 112
