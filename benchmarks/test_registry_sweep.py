"""Registry-driven sweep bench: every quick experiment through the
uniform ``run(ExperimentSpec)`` entry point, timed one by one.

Unlike the per-figure benches (which call drivers directly and assert
the paper's numbers), this one exercises the path the runner and the
parallel executor use, and prints each experiment's rendered report.
"""

import pytest

from repro.api import ExperimentSpec, get, names, run_experiment


@pytest.mark.parametrize("name", names(quick_only=True))
def test_registry_experiment(run_once, name):
    result = run_once(run_experiment, ExperimentSpec(name=name, seed=0))
    assert result.name == name
    assert result.records, f"experiment {name} exported no records"
    print()
    print(get(name).report(result.data))
