"""Table 3 — the pmake-copy disk workload.

Regenerates the response / average-wait / average-latency rows for the
Pos, Iso, and PIso disk scheduling policies.
Paper: PIso cuts the pmake's response ~39% and its request wait ~76%
versus Pos, costs the copy ~23%, and leaves latency about flat.
"""

from repro.experiments import run_table_3
from repro.metrics import format_table


def test_table3_pmake_copy(run_once):
    rows_by_policy = run_once(run_table_3)
    rows = [
        [
            name,
            f"{r.response_a_s:.2f}",
            f"{r.response_b_s:.2f}",
            f"{r.wait_a_ms:.1f}",
            f"{r.wait_b_ms:.1f}",
            f"{r.latency_ms:.2f}",
            r.requests,
        ]
        for name, r in rows_by_policy.items()
    ]
    print()
    print(format_table(
        ["policy", "pmake s", "copy s", "wait pmk ms", "wait cpy ms",
         "avg lat ms", "requests"],
        rows,
        title="Table 3 — pmake-copy (paper: PIso vs Pos = pmake -39%,"
        " wait -76%, copy +23%)",
    ))

    pos, piso = rows_by_policy["pos"], rows_by_policy["piso"]
    assert piso.response_a_s < 0.75 * pos.response_a_s
    assert piso.wait_a_ms < 0.8 * pos.wait_a_ms
    assert piso.response_b_s > pos.response_b_s
    assert piso.latency_ms < 1.25 * pos.latency_ms
    # The workload is calibrated near the paper's request counts
    # (~300 pmake + ~1050 copy).
    assert 700 < pos.requests < 1600
