"""Figure 3 — Pmake8 resource sharing.

Regenerates the response-time bars for the heavily-loaded SPUs (5-8)
in the unbalanced placement, normalised to SMP-balanced.
Paper: SMP 156, Quo 187, PIso 146.
"""

from repro.experiments import PAPER_FIG3, run_figures_2_and_3
from repro.metrics import format_table


def test_fig3_pmake8_sharing(run_once):
    results = run_once(run_figures_2_and_3)
    rows = [
        [name, f"{r.fig3_unbalanced:.0f}", f"{PAPER_FIG3[name]:.0f}"]
        for name, r in results.items()
    ]
    print()
    print(format_table(
        ["scheme", "unbalanced", "paper"], rows,
        title="Figure 3 — sharing for SPUs 5-8 (percent of SMP-balanced)",
    ))

    assert results["Quo"].fig3_unbalanced > results["SMP"].fig3_unbalanced + 20
    assert results["PIso"].fig3_unbalanced <= results["SMP"].fig3_unbalanced + 10
