"""Substrate performance benchmarks (not paper results).

These measure the simulator itself — event throughput, disk model
cost, a full kernel boot+run — so regressions in simulation speed are
visible.  They use real multi-round pytest-benchmark timing.
"""

from repro.core import piso_scheme
from repro.disk import hp97560, service_time
from repro.disk.model import fast_disk
from repro.kernel import Compute, DiskSpec, Kernel, MachineConfig
from repro.sim import Engine
from repro.sim.units import msecs


def test_engine_event_throughput(benchmark):
    def run_10k_events():
        engine = Engine()

        def chain(remaining):
            if remaining:
                engine.after(1, chain, remaining - 1)

        chain(10_000)
        engine.run()
        return engine.now

    assert benchmark(run_10k_events) == 10_000


def test_disk_service_time_cost(benchmark):
    geometry = hp97560()

    def compute_1k():
        total = 0
        for i in range(1000):
            total += service_time(geometry, 0, i * 17, (i * 997) % 100_000, 8).total_us
        return total

    assert benchmark(compute_1k) > 0


def test_kernel_boot_and_run(benchmark):
    def boot_and_run():
        kernel = Kernel(
            MachineConfig(ncpus=4, memory_mb=16,
                          disks=[DiskSpec(geometry=fast_disk())],
                          scheme=piso_scheme())
        )
        spus = [kernel.create_spu(f"u{i}") for i in range(4)]
        kernel.boot()

        def job():
            yield Compute(msecs(100))

        for spu in spus:
            kernel.spawn(job(), spu)
        kernel.run()
        return kernel.engine.now

    assert benchmark(boot_and_run) >= msecs(100)
