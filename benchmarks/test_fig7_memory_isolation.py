"""Figure 7 — memory isolation workload.

Regenerates both graphs: isolation (SPU 1's job under rising load) and
sharing (SPU 2's two jobs), normalised to SMP-balanced.
Paper: isolation SMP 145 / PIso 113 / Quo ~100;
sharing SMP 150 / PIso ~160 / Quo 245.
"""

from repro.experiments import PAPER_FIG7, run_figure_7
from repro.metrics import format_table


def test_fig7_memory_isolation(run_once):
    results = run_once(run_figure_7)
    rows = [
        [
            name,
            f"{r.isolation_unbalanced:.0f}",
            f"{PAPER_FIG7['isolation'][name]:.0f}",
            f"{r.sharing_unbalanced:.0f}",
            f"{PAPER_FIG7['sharing'][name]:.0f}",
        ]
        for name, r in results.items()
    ]
    print()
    print(format_table(
        ["scheme", "SPU1 unbal", "paper", "SPU2 unbal", "paper"], rows,
        title="Figure 7 — memory isolation (percent of SMP-balanced)",
    ))

    assert results["SMP"].isolation_unbalanced > 125
    assert results["PIso"].isolation_unbalanced < 120
    assert results["Quo"].sharing_unbalanced > 220
    assert results["PIso"].sharing_unbalanced < results["Quo"].sharing_unbalanced - 50
