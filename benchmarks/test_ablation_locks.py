"""Section 3.4 ablation — kernel lock granularity.

The paper changed the inode lock from mutual exclusion to
multiple-readers/one-writer (lookups dominate) and saw base response
times improve 20-30% on a four-processor system.
"""

from repro.experiments import run_lock_ablation, run_priority_inversion_ablation


def test_ablation_priority_inversion(run_once):
    """Section 3.4's other fix: resource transfer to semaphore holders
    ([SRL90] priority inheritance) bounds the inversion a high-priority
    process suffers behind a preempted lock holder."""
    result = run_once(run_priority_inversion_ablation)
    print()
    print(
        f"high-priority lock wait: {result.no_inheritance_wait_ms:.0f} ms"
        f" without inheritance -> {result.inheritance_wait_ms:.0f} ms with"
        f" ({result.speedup:.1f}x)"
    )
    assert result.no_inheritance_wait_ms > 300
    assert result.inheritance_wait_ms < 150


def test_ablation_inode_lock(run_once):
    result = run_once(run_lock_ablation)
    print()
    print(
        f"root-inode lock: mutex {result.mutex_response_us / 1e6:.2f}s"
        f" ({result.mutex_contentions} contentions) -> readers/writer"
        f" {result.rwlock_response_us / 1e6:.2f}s"
        f" ({result.rwlock_contentions} contentions):"
        f" {result.improvement_percent:.0f}% better (paper: 20-30%)"
    )
    assert 10 <= result.improvement_percent <= 40
    assert result.rwlock_contentions < result.mutex_contentions / 2
