"""Network-bandwidth isolation (the paper's Section-5 sketch).

Not a paper table — the paper explicitly left network bandwidth as an
application of the same technique ("similar to that of disk bandwidth,
without the complication of head position").  This bench regenerates
the comparison the disk tables make, on a shared 100 Mb/s link.
"""

from repro.experiments import run_network_table
from repro.metrics import format_table


def test_network_isolation(run_once):
    rows_by_policy = run_once(run_network_table)
    rows = [
        [name, f"{r.rpc_response_s:.2f}", f"{r.bulk_response_s:.2f}",
         f"{r.rpc_wait_ms:.2f}", f"{r.bulk_wait_ms:.2f}",
         f"{r.goodput_mbps:.1f}"]
        for name, r in rows_by_policy.items()
    ]
    print()
    print(format_table(
        ["policy", "rpc s", "bulk s", "rpc wait ms", "bulk wait ms",
         "goodput Mb/s"],
        rows,
        title="Network isolation — RPC job vs 40 MB bulk stream",
    ))

    fifo, fair = rows_by_policy["fifo"], rows_by_policy["fair"]
    assert fair.rpc_response_s < 0.5 * fifo.rpc_response_s
    assert fair.bulk_response_s < 1.1 * fifo.bulk_response_s
    assert abs(fair.goodput_mbps - fifo.goodput_mbps) < 5.0
