"""Gang scheduling extension (Section 3.1 footnote).

The paper says gang-scheduled parallel applications "would require
some modifications" to its space-partitioned scheme.  This bench
measures the modification on a spin-barrier workload sharing its SPU
with background load: co-scheduling eliminates the CPU burned in
busy-waits when gang members are dispatched piecemeal.
"""

from repro.core import piso_scheme
from repro.disk.model import fast_disk
from repro.kernel import BarrierWait, Compute, DiskSpec, Kernel, MachineConfig
from repro.kernel.locks import Barrier
from repro.sim.units import msecs


def spin_worker(barrier, phases, phase_ms):
    for _ in range(phases):
        yield Compute(msecs(phase_ms))
        yield BarrierWait(barrier, spin=True)


def run_pair(gang: bool, seed: int = 3):
    kernel = Kernel(
        MachineConfig(ncpus=2, memory_mb=32,
                      disks=[DiskSpec(geometry=fast_disk())],
                      scheme=piso_scheme(), seed=seed)
    )
    spu = kernel.create_spu("u")
    kernel.boot()
    barrier = Barrier(2)
    behaviors = [spin_worker(barrier, 30, 40.0) for _ in range(2)]
    if gang:
        procs = kernel.spawn_gang(behaviors, spu, name="gang")
    else:
        procs = [kernel.spawn(b, spu) for b in behaviors]

    def bg():
        yield Compute(msecs(3000))

    kernel.spawn(bg(), spu)
    kernel.run()
    return sum(p.cpu_time_us for p in procs) / 1e6


def test_gang_scheduling_spin_waste(run_once):
    def both():
        return run_pair(gang=False), run_pair(gang=True)

    burned_without, burned_with = run_once(both)
    useful = 2 * 30 * 0.040
    print()
    print(
        f"spin-barrier gang, {useful:.2f}s useful CPU: fragmented dispatch"
        f" burned {burned_without:.2f}s, gang-scheduled {burned_with:.2f}s"
    )
    assert burned_without > useful + 0.1
    assert burned_with <= useful + 0.05
