"""Related-work comparison: SPU partitioning (PIso) vs stride
scheduling [Wal95] on the Figure-5 workload.

The paper's related work positions stride scheduling as the main
proportional-share alternative (implemented for uniprocessors only).
This bench runs both on the same multiprocessor workload: stride
matches PIso's isolation within a few percent, but — as the migration
sweep shows — pays more cache-affinity cost because it schedules from
a global queue while space partitioning pins processes to CPUs.
"""

from repro.experiments import run_migration_sweep, run_scheduler_comparison
from repro.metrics import format_table


def test_stride_vs_piso_isolation(run_once):
    comparison = run_once(run_scheduler_comparison)
    rows = [
        ["PIso"] + [f"{comparison.piso[k]:.0f}" for k in ("ocean", "flashlite", "vcs")],
        ["Stride"] + [f"{comparison.stride[k]:.0f}" for k in ("ocean", "flashlite", "vcs")],
    ]
    print()
    print(format_table(
        ["scheme", "ocean", "flashlite", "vcs"], rows,
        title="CPU-isolation workload, percent of SMP",
    ))
    for app in ("ocean", "flashlite", "vcs"):
        # Both isolate: within 10 points of each other, both below SMP+5.
        assert abs(comparison.piso[app] - comparison.stride[app]) < 10
        assert comparison.stride[app] < 112


def test_stride_pays_more_affinity_cost_than_piso(run_once):
    points = run_once(run_migration_sweep)
    by_scheme = {}
    for p in points:
        by_scheme.setdefault(p.scheme, {})[p.migration_cost_us] = p.mean_response_s
    top = max(by_scheme["SMP"])
    penalties = {
        scheme: costs[top] / costs[0] for scheme, costs in by_scheme.items()
    }
    print()
    print("migration penalty at highest cost:",
          {k: f"{100 * (v - 1):.1f}%" for k, v in penalties.items()})
    assert penalties["PIso"] < penalties["Stride"] < penalties["SMP"] * 1.01
